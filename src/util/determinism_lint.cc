#include "util/determinism_lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "util/logging.h"

namespace msopds {
namespace {

namespace fs = std::filesystem;

/// One source line in both raw form (markers live in comments) and
/// code-only form (comments and string/char literals blanked out, so
/// rule patterns never match documentation or log text).
struct SourceLine {
  std::string raw;
  std::string code;
};

/// Strips `// ...`, `/* ... */` (tracking state across lines), and the
/// contents of string/char literals. Literal delimiters are kept so the
/// code shape survives; escapes are honored.
std::vector<SourceLine> StripComments(const std::string& text) {
  std::vector<SourceLine> lines;
  std::string raw;
  std::string code;
  bool in_block = false;
  bool in_string = false;
  bool in_char = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      // Line comments and literals never span lines in this codebase
      // (no raw strings in src/); block comments do.
      in_string = in_char = false;
      lines.push_back({raw, code});
      raw.clear();
      code.clear();
      continue;
    }
    raw += c;
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (in_block) {
      if (c == '*' && next == '/') {
        in_block = false;
        raw += '/';
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\' && next != '\0') {
        raw += next;
        ++i;
      } else if (c == '"') {
        in_string = false;
        code += '"';
      }
      continue;
    }
    if (in_char) {
      if (c == '\\' && next != '\0') {
        raw += next;
        ++i;
      } else if (c == '\'') {
        in_char = false;
        code += '\'';
      }
      continue;
    }
    if (c == '/' && next == '/') {
      // Consume the rest of the line as a comment (kept in raw).
      while (i + 1 < text.size() && text[i + 1] != '\n') raw += text[++i];
      continue;
    }
    if (c == '/' && next == '*') {
      in_block = true;
      raw += '*';
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      code += c;
      continue;
    }
    if (c == '\'') {
      // Digit separators ('1'000') do not occur in src/; treat every
      // quote as a char literal open.
      in_char = true;
      code += c;
      continue;
    }
    code += c;
  }
  if (!raw.empty() || !code.empty()) lines.push_back({raw, code});
  return lines;
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool AllowedBy(const std::vector<SourceLine>& lines, size_t index,
               const std::string& marker) {
  if (Contains(lines[index].raw, marker.c_str())) return true;
  return index > 0 && Contains(lines[index - 1].raw, marker.c_str());
}

// --- rule 1: raw-sync -------------------------------------------------------

const std::regex kRawSyncRe(
    R"(std::(mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock)\b)"
    R"(|#\s*include\s*<(mutex|condition_variable|shared_mutex)>)");

void CheckRawSync(const std::string& rel, const std::vector<SourceLine>& lines,
                  LintReport* report) {
  if (rel == "util/sync.h") return;  // the one sanctioned home
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code, kRawSyncRe)) continue;
    if (AllowedBy(lines, i, "determinism-lint: allow(raw-sync)")) continue;
    report->findings.push_back(
        {rel, static_cast<int64_t>(i + 1), "raw-sync",
         "raw synchronization primitive outside util/sync.h; use the "
         "annotated Mutex/MutexLock/CondVar wrappers"});
  }
}

// --- rule 2: ambient-rng ----------------------------------------------------

// `time(` must not be preceded by an identifier char, '.', '>', or ':'
// so steady_clock::time_point, MicrosSince(...), obj.time(...) and
// my_time(...) stay legal while ::time(nullptr) and bare time(0) are
// caught.
const std::regex kAmbientRngRe(
    R"(std::rand\b|\bsrand\s*\(|\brandom_device\b|(^|[^A-Za-z0-9_.>:])time\s*\()");

void CheckAmbientRng(const std::string& rel,
                     const std::vector<SourceLine>& lines,
                     LintReport* report) {
  if (rel == "util/rng.h" || rel == "util/rng.cc") return;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code, kAmbientRngRe)) continue;
    if (AllowedBy(lines, i, "determinism-lint: allow(ambient-rng)")) continue;
    report->findings.push_back(
        {rel, static_cast<int64_t>(i + 1), "ambient-rng",
         "ambient randomness/time source; all nondeterminism must flow "
         "through seed-driven util/rng streams"});
  }
}

// --- rule 3: unordered-iteration --------------------------------------------

// Declarations like `std::unordered_map<K, V> name` (file-local
// heuristic: parameters and members count too — iterating either is
// equally order-sensitive). The template argument list is matched by
// scanning to the balanced '>'.
std::vector<std::string> UnorderedContainerNames(
    const std::vector<SourceLine>& lines) {
  std::vector<std::string> names;
  for (const SourceLine& line : lines) {
    const std::string& code = line.code;
    for (const char* kind : {"unordered_map", "unordered_set"}) {
      size_t pos = 0;
      while ((pos = code.find(kind, pos)) != std::string::npos) {
        size_t at = pos + std::strlen(kind);
        pos = at;
        if (at >= code.size() || code[at] != '<') continue;
        int depth = 0;
        while (at < code.size()) {
          if (code[at] == '<') ++depth;
          if (code[at] == '>' && --depth == 0) break;
          ++at;
        }
        if (at >= code.size()) continue;  // args span lines: give up
        ++at;
        while (at < code.size() &&
               (std::isspace(static_cast<unsigned char>(code[at])) ||
                code[at] == '&' || code[at] == '*')) {
          ++at;
        }
        size_t end = at;
        while (end < code.size() &&
               (std::isalnum(static_cast<unsigned char>(code[end])) ||
                code[end] == '_')) {
          ++end;
        }
        if (end > at) names.push_back(code.substr(at, end - at));
      }
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void CheckUnorderedIteration(const std::string& rel,
                             const std::vector<SourceLine>& lines,
                             LintReport* report) {
  const std::vector<std::string> names = UnorderedContainerNames(lines);
  if (names.empty()) return;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const size_t colon = code.find(" : ");
    if (colon == std::string::npos || !Contains(code, "for")) continue;
    if (!std::regex_search(code, std::regex(R"(\bfor\s*\()"))) continue;
    for (const std::string& name : names) {
      if (!std::regex_search(
              code.substr(colon),
              std::regex(std::string(R"(:\s*\*?)") + name + R"(\s*\))"))) {
        continue;
      }
      if (AllowedBy(lines, i, "determinism-lint: order-insensitive") ||
          AllowedBy(lines, i,
                    "determinism-lint: allow(unordered-iteration)")) {
        continue;
      }
      report->findings.push_back(
          {rel, static_cast<int64_t>(i + 1), "unordered-iteration",
           "range-for over unordered container '" + name +
               "': hash order must not feed output or accumulation "
               "order (sort the keys, or annotate "
               "'// determinism-lint: order-insensitive' if commutative)"});
    }
  }
}

// --- rule 4: raw-simd -------------------------------------------------------

// Vendor intrinsics and vector types: the x86 <immintrin.h> family and
// its _mm/_mm256/_mm512 identifiers, and the NEON <arm_neon.h> header
// with its v*q_* intrinsics and NxM_t lane types. Hand-vectorized code
// is allowed exactly one home — tensor/simd.h — where every backend is
// forced onto the shared fixed-lane reduction schedule (DESIGN.md §14);
// intrinsics sprinkled anywhere else can silently change associativity
// and break the bit-exactness contract between backends.
const std::regex kRawSimdRe(
    R"(#\s*include\s*<([a-z]+intrin|arm_neon|x86intrin)\.h>)"
    R"(|\b_mm(256|512)?_[a-z0-9_]+\s*\()"
    R"(|\b__m(128|256|512)[di]?\b)"
    R"(|\bv[a-z0-9_]+q?_[fsu](8|16|32|64)\s*\()"
    R"(|\b(float|int|uint|poly)(8|16|32|64)x(2|4|8|16)(x(2|3|4))?_t\b)");

void CheckRawSimd(const std::string& rel, const std::vector<SourceLine>& lines,
                  LintReport* report) {
  if (rel == "tensor/simd.h") return;  // the one sanctioned home
  for (size_t i = 0; i < lines.size(); ++i) {
    if (!std::regex_search(lines[i].code, kRawSimdRe)) continue;
    if (AllowedBy(lines, i, "determinism-lint: allow(raw-simd)")) continue;
    if (AllowedBy(lines, i, "lint:allow-simd")) continue;
    report->findings.push_back(
        {rel, static_cast<int64_t>(i + 1), "raw-simd",
         "vendor SIMD intrinsic outside tensor/simd.h; route vector code "
         "through the dispatch wrappers so every backend shares the "
         "fixed-lane reduction schedule"});
  }
}

// --- rule 5: unguarded-member -----------------------------------------------

struct ClassScope {
  std::string name;
  int depth = 0;           // brace depth of the class body
  bool owns_mutex = false;
  std::vector<size_t> member_lines;
};

const std::regex kClassDeclRe(R"((^|[^\w])(class|struct)\s+([A-Za-z_]\w*))");
const std::regex kMutexMemberRe(R"((^|[^\w:])Mutex\s+\w+)");
const std::regex kMemberNameRe(
    R"(([A-Za-z_]\w*)\s*(\[\w*\]\s*)?(=[^;]*|\{[^;]*\})?;\s*$)");

bool MemberLineExempt(const std::string& code, const std::string& raw) {
  static const char* const kExemptTokens[] = {
      "MSOPDS_GUARDED_BY",  "MSOPDS_PT_GUARDED_BY", "std::atomic",
      "CondVar",            "std::thread",          "static ",
      "constexpr ",         "using ",               "typedef ",
      "friend ",            "= delete",             "= default",
      "enum ",              "MSOPDS_REQUIRES",      "MSOPDS_EXCLUDES",
      "MSOPDS_ACQUIRE",     "MSOPDS_RELEASE",
      // Nested forward declarations ("struct Job;") are not members.
      "class ",             "struct ",
  };
  for (const char* token : kExemptTokens) {
    if (Contains(code, token)) return true;
  }
  if (Contains(raw, "determinism-lint: unguarded(")) return true;
  // Mutexes themselves (the capability) and const members (immutable
  // after construction) need no guard.
  if (std::regex_search(code, kMutexMemberRe)) return true;
  if (std::regex_search(code, std::regex(R"(^\s*(mutable\s+)?const\s)"))) {
    return true;
  }
  return false;
}

void CheckUnguardedMembers(const std::string& rel,
                           const std::vector<SourceLine>& lines,
                           LintReport* report) {
  std::vector<ClassScope> stack;
  std::vector<ClassScope> closed;
  int depth = 0;
  bool pending_class = false;
  std::string pending_name;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    std::smatch m;
    if (std::regex_search(code, m, kClassDeclRe) &&
        !Contains(code, ";")) {  // skip forward declarations
      pending_class = true;
      pending_name = m[3];
    }
    const int depth_at_line_start = depth;
    // Candidate member line: directly inside a class body, before any
    // brace movement on this line shifts the depth.
    if (!stack.empty() && stack.back().depth == depth_at_line_start &&
        !pending_class) {
      ClassScope& scope = stack.back();
      if (std::regex_search(code, kMutexMemberRe) &&
          Contains(code, ";")) {
        scope.owns_mutex = true;
      }
      scope.member_lines.push_back(i);
    }
    for (const char c : code) {
      if (c == '{') {
        ++depth;
        if (pending_class) {
          stack.push_back({pending_name, depth, false, {}});
          pending_class = false;
        }
      } else if (c == '}') {
        if (!stack.empty() && stack.back().depth == depth) {
          closed.push_back(std::move(stack.back()));
          stack.pop_back();
        }
        --depth;
      }
    }
  }
  while (!stack.empty()) {  // unbalanced file: still report what we saw
    closed.push_back(std::move(stack.back()));
    stack.pop_back();
  }
  for (const ClassScope& scope : closed) {
    if (!scope.owns_mutex) continue;
    for (const size_t i : scope.member_lines) {
      const std::string& code = lines[i].code;
      // Function declarations and nested-scope closers end in ");",
      // ") const;", "}" etc.; member variables end with ';' after a
      // name or initializer.
      std::smatch m;
      if (!std::regex_search(code, m, kMemberNameRe)) continue;
      if (std::regex_search(code, std::regex(R"(\)\s*(const\s*)?;\s*$)"))) {
        continue;  // function declaration
      }
      if (MemberLineExempt(code, lines[i].raw)) continue;
      report->findings.push_back(
          {rel, static_cast<int64_t>(i + 1), "unguarded-member",
           "member '" + std::string(m[1]) + "' of mutex-owning class '" +
               scope.name +
               "' lacks MSOPDS_GUARDED_BY (or a "
               "'// determinism-lint: unguarded(<why>)' justification)"});
    }
  }
}

}  // namespace

LintReport RunDeterminismLint(const std::string& src_root) {
  LintReport report;
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src_root, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(it->path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    std::ifstream in(path);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::vector<SourceLine> lines = StripComments(buffer.str());
    const std::string rel =
        fs::path(path).lexically_relative(src_root).generic_string();
    ++report.files_scanned;
    report.checks_run += kNumLintRules;
    CheckRawSync(rel, lines, &report);
    CheckAmbientRng(rel, lines, &report);
    CheckUnorderedIteration(rel, lines, &report);
    CheckRawSimd(rel, lines, &report);
    CheckUnguardedMembers(rel, lines, &report);
  }
  return report;
}

std::string FormatLintReport(const LintReport& report) {
  std::ostringstream out;
  for (const LintFinding& finding : report.findings) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule
        << "] " << finding.message << "\n";
  }
  out << "determinism-lint: " << report.files_scanned << " file(s), "
      << report.checks_run << " check(s), " << report.findings.size()
      << " finding(s)\n";
  return out.str();
}

}  // namespace msopds
