#include "util/checkpoint.h"

#include <cmath>
#include <fstream>

#include "util/json_writer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {
namespace {

// Minimal parser for the flat single-line JSON objects this store
// writes: string keys mapping to string / number / bool / null scalars.
// Not a general JSON parser — nested containers are rejected.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  // Parses the whole object into key -> raw value token (strings keep
  // their quotes so the caller can distinguish "1" from 1).
  Status Parse(std::unordered_map<std::string, std::string>* fields) {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return Tail();
    while (true) {
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      std::string value;
      status = ParseValueToken(&value);
      if (!status.ok()) return status;
      (*fields)[key] = std::move(value);
      SkipSpace();
      if (Consume('}')) return Tail();
      if (!Consume(',')) return Error("expected ',' or '}'");
      SkipSpace();
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  Status Tail() {
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return Status::Ok();
  }

  // Parses a quoted string, resolving the escapes JsonEscape emits.
  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          int64_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += h - '0';
            else if (h >= 'a' && h <= 'f') code += 10 + h - 'a';
            else if (h >= 'A' && h <= 'F') code += 10 + h - 'A';
            else return Error("bad \\u escape");
          }
          // The writer only emits \u00xx control characters.
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  // A value token: a quoted string (kept quoted) or a bare scalar up to
  // the next ',' / '}' (numbers, true/false/null).
  Status ParseValueToken(std::string* out) {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      std::string inner;
      const Status status = ParseString(&inner);
      if (!status.ok()) return status;
      *out = "\"" + inner + "\"";
      return Status::Ok();
    }
    if (pos_ < text_.size() && (text_[pos_] == '{' || text_[pos_] == '[')) {
      return Error("nested containers not supported");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}') {
      ++pos_;
    }
    *out = std::string(StripWhitespace(text_.substr(start, pos_ - start)));
    if (out->empty()) return Error("empty value");
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Prefixes `status`'s message with "context: " when context is set, so a
// schema error names the file and row it came from.
Status WithContext(const std::string& context, const Status& status) {
  if (context.empty() || status.ok()) return status;
  return Status(status.code(), context + ": " + status.message());
}

}  // namespace

std::string CellRecordToJson(const CellRecord& record) {
  JsonWriter json;
  json.BeginObject();
  json.Key("key").String(record.key);
  json.Key("ok").Bool(record.ok);
  json.Key("rbar").Double(record.mean_average_rating);
  json.Key("hr").Double(record.mean_hit_rate);
  json.Key("repeats").Int(record.repeats);
  json.Key("unhealthy_repeats").Int(record.unhealthy_repeats);
  json.Key("threads").Int(record.threads);
  json.Key("worker").Int(record.worker_id);
  json.Key("error").String(record.error);
  json.EndObject();
  return json.TakeString();
}

namespace {

Status FieldError(const std::string& name) {
  return Status::InvalidArgument("bad or missing field '" + name + "'");
}

StatusOr<CellRecord> ParseCellRecordImpl(const std::string& line) {
  std::unordered_map<std::string, std::string> fields;
  FlatJsonParser parser(line);
  const Status status = parser.Parse(&fields);
  if (!status.ok()) return status;

  auto quoted = [&](const char* name, std::string* out) -> bool {
    auto it = fields.find(name);
    if (it == fields.end() || it->second.size() < 2 ||
        it->second.front() != '"' || it->second.back() != '"') {
      return false;
    }
    *out = it->second.substr(1, it->second.size() - 2);
    return true;
  };
  auto number = [&](const char* name, double* out) -> bool {
    auto it = fields.find(name);
    return it != fields.end() && ParseJsonDouble(it->second, out);
  };

  CellRecord record;
  if (!quoted("key", &record.key) || record.key.empty()) {
    return FieldError("key");
  }
  auto it = fields.find("ok");
  if (it == fields.end() || (it->second != "true" && it->second != "false")) {
    return FieldError("ok");
  }
  record.ok = it->second == "true";
  if (!number("rbar", &record.mean_average_rating)) return FieldError("rbar");
  if (!number("hr", &record.mean_hit_rate)) return FieldError("hr");
  double repeats = 0.0;
  if (!number("repeats", &repeats)) return FieldError("repeats");
  record.repeats = static_cast<int>(repeats);
  double unhealthy = 0.0;
  if (number("unhealthy_repeats", &unhealthy)) {
    record.unhealthy_repeats = static_cast<int>(unhealthy);
  }
  // Absent in records written before the parallel runtime: those ran on
  // the serial kernels, i.e. one thread.
  double threads = 1.0;
  if (number("threads", &threads)) {
    record.threads = static_cast<int>(threads);
  }
  // Absent in records written before the sweep orchestrator: those came
  // from the single-process driver, worker 0.
  double worker = 0.0;
  if (number("worker", &worker)) {
    record.worker_id = static_cast<int>(worker);
  }
  quoted("error", &record.error);
  return record;
}

}  // namespace

StatusOr<CellRecord> ParseCellRecord(const std::string& line,
                                     const std::string& context) {
  StatusOr<CellRecord> record = ParseCellRecordImpl(line);
  if (!record.ok()) return WithContext(context, record.status());
  return record;
}

CheckpointStore::CheckpointStore(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in.is_open()) return;  // first run: nothing to resume
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    auto record = ParseCellRecord(
        line, path_ + ":" + std::to_string(line_number));
    if (!record.ok()) {
      // A crash mid-write can leave one torn trailing line; recompute
      // that cell instead of aborting the resume.
      MSOPDS_LOG(Warning) << "dropping unreadable checkpoint record ("
                          << record.status().ToString() << ")";
      continue;
    }
    record.value().source_line = line_number;
    auto [it, inserted] =
        index_.emplace(record.value().key, records_.size());
    if (inserted) {
      records_.push_back(std::move(record).value());
    } else {
      records_[it->second] = std::move(record).value();
    }
  }
}

const CellRecord* CheckpointStore::Find(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &records_[it->second];
}

void CheckpointStore::Append(const CellRecord& record) {
  MSOPDS_CHECK(!record.key.empty()) << "checkpoint records need a key";
  auto [it, inserted] = index_.emplace(record.key, records_.size());
  if (inserted) {
    records_.push_back(record);
  } else {
    records_[it->second] = record;
  }
  if (path_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  MSOPDS_CHECK(out.is_open()) << "cannot append checkpoint to " << path_;
  out << CellRecordToJson(record) << '\n';
  out.flush();
}

}  // namespace msopds
