#ifndef MSOPDS_UTIL_ARENA_H_
#define MSOPDS_UTIL_ARENA_H_

#include <cstdint>
#include <vector>

#include "util/sync.h"

namespace msopds {

/// Counters of the tensor-buffer arena. All byte figures count payload
/// (requested doubles * 8), not size-class slack.
struct ArenaStats {
  /// Buffer requests since the last ResetStats(), pooled or not.
  int64_t alloc_calls = 0;
  /// Requests served by recycling a cached block (0 with the arena off).
  int64_t pool_hits = 0;
  /// Bytes currently handed out (live tensor buffers).
  int64_t bytes_live = 0;
  /// Maximum of bytes_live since the last ResetPeak()/ResetStats().
  int64_t high_water_bytes = 0;
  /// Bytes parked in the free lists, ready for recycling.
  int64_t bytes_cached = 0;
  /// Bulk releases performed (Trim() calls that freed at least one block).
  int64_t trims = 0;

  /// Requests that hit the system heap: alloc_calls - pool_hits.
  int64_t heap_allocs() const { return alloc_calls - pool_hits; }
  /// pool_hits / alloc_calls in [0, 1]; 0 when nothing was requested.
  double hit_rate() const {
    return alloc_calls > 0
               ? static_cast<double>(pool_hits) /
                     static_cast<double>(alloc_calls)
               : 0.0;
  }
};

/// Size-class slab allocator for tensor buffers (arrays of double).
///
/// Freed blocks are parked on per-size-class free lists and recycled by
/// later allocations of the same class, so steady-state training loops
/// stop touching the system heap entirely. Requests are rounded up to
/// power-of-two classes between kMinClassDoubles and kMaxClassDoubles;
/// larger blocks bypass the pool (allocated and freed directly). All
/// operations are thread-safe (one mutex; allocation happens during
/// graph recording, never inside kernel inner loops).
///
/// Recycling must never mask a use-after-free: in Debug and sanitizer
/// builds, freed blocks are filled with a recognizable signaling-NaN
/// pattern, and under AddressSanitizer the cached bytes are additionally
/// poisoned (__asan_poison_memory_region) until reallocated, so a stale
/// pointer into a cached block still reports use-after-poison.
///
/// The pool is on by default and switchable for A/B verification with
/// the MSOPDS_ARENA environment variable (0/off disables recycling;
/// SetEnabled() overrides at runtime). Allocation results are identical
/// either way — recycled blocks are handed out exactly as a fresh
/// allocation would be — so enabled/disabled runs are bit-identical.
class Arena {
 public:
  /// Smallest pooled block: 64 doubles (512 bytes).
  static constexpr int64_t kMinClassDoubles = 64;
  /// Largest pooled block: 2^24 doubles (128 MiB); larger requests
  /// bypass the pool.
  static constexpr int64_t kMaxClassDoubles = int64_t{1} << 24;

  /// The process-wide arena used by tensor storage.
  static Arena& Global();

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena();

  /// An uninitialized block holding at least `num_doubles` doubles.
  /// Callers must not rely on the contents (recycled blocks hold the
  /// poison pattern in Debug builds). Returns nullptr for num_doubles 0.
  double* Allocate(int64_t num_doubles);

  /// Returns a block obtained from Allocate(num_doubles). With the pool
  /// enabled and the size pooled, the block is cached for recycling;
  /// otherwise it is freed immediately.
  void Deallocate(double* block, int64_t num_doubles);

  /// Frees every cached block back to the system heap (the bulk-release
  /// leg of ArenaRegion). Live buffers are untouched.
  void Trim();

  ArenaStats stats() const;
  /// Zeroes the counters; bytes_live/bytes_cached reflect reality and
  /// high_water_bytes restarts from the current bytes_live.
  void ResetStats();
  /// Restarts high_water_bytes from the current bytes_live (per-phase
  /// peak measurement without losing the other counters).
  void ResetPeak();

  bool enabled() const;
  /// Overrides the MSOPDS_ARENA default; returns the previous value.
  /// Disabling does not drop already-cached blocks (call Trim()).
  bool SetEnabled(bool enabled);

  /// Doubles actually reserved for a request of `num_doubles` (the
  /// size-class capacity); exposed for tests.
  static int64_t SizeClassCapacity(int64_t num_doubles);

  /// The Debug/sanitizer poison pattern freed blocks are filled with
  /// (a signaling-NaN payload, so stale reads surface as NaNs).
  static uint64_t PoisonPattern();

 private:
  // One free list per power-of-two class; index = log2(capacity).
  static constexpr int kNumClasses = 25;

  mutable Mutex mutex_;
  std::vector<double*> free_lists_[kNumClasses] MSOPDS_GUARDED_BY(mutex_);
  ArenaStats stats_ MSOPDS_GUARDED_BY(mutex_);
  // -1 = consult MSOPDS_ARENA lazily, else 0/1.
  int enabled_override_ MSOPDS_GUARDED_BY(mutex_) = -1;
};

/// Scoped bulk release: when the outermost region on a thread of control
/// exits, every block cached by the arena is returned to the system heap.
/// Wrap a trainer run or an attack trial in a region so its allocation
/// churn is recycled *during* the phase but does not stay resident after
/// it. Regions nest; only the outermost exit trims.
class ArenaRegion {
 public:
  ArenaRegion();
  ArenaRegion(const ArenaRegion&) = delete;
  ArenaRegion& operator=(const ArenaRegion&) = delete;
  ~ArenaRegion();
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_ARENA_H_
