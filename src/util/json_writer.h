#ifndef MSOPDS_UTIL_JSON_WRITER_H_
#define MSOPDS_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msopds {

/// Minimal streaming JSON writer for exporting experiment results in a
/// machine-readable form (no third-party dependencies). Handles string
/// escaping, number formatting, and context-aware commas; nesting is
/// validated with CHECKs.
///
/// Usage:
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("method").String("MSOPDS");
///   json.Key("rbar").Double(3.51);
///   json.Key("plan").BeginArray();
///   json.Int(1).Int(2);
///   json.EndArray();
///   json.EndObject();
///   std::string out = json.TakeString();
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be inside an object and followed by a
  /// value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  /// Non-finite values are written as the strings "nan" / "inf" / "-inf"
  /// (JSON has no such literals); ParseJsonDouble() reverses the mapping.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Finishes and returns the document; the writer is reset. CHECK-fails
  /// if containers are still open.
  std::string TakeString();

 private:
  enum class Context { kTop, kObject, kArray };

  void BeforeValue();
  void Append(const std::string& text) { out_ += text; }

  std::string out_;
  std::vector<Context> stack_ = {Context::kTop};
  std::vector<bool> needs_comma_ = {false};
  bool pending_key_ = false;
  bool top_value_written_ = false;
};

/// Escapes a string per JSON rules (quotes not included).
std::string JsonEscape(const std::string& text);

/// Parses a raw JSON scalar token into a double: a plain number, or one
/// of the quoted "nan" / "inf" / "-inf" strings emitted by Double().
/// Returns false on any other token (including null).
bool ParseJsonDouble(const std::string& token, double* value);

}  // namespace msopds

#endif  // MSOPDS_UTIL_JSON_WRITER_H_
