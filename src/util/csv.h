#ifndef MSOPDS_UTIL_CSV_H_
#define MSOPDS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace msopds {

/// Reads a delimiter-separated file into rows of fields. Blank lines and
/// lines starting with '#' are skipped. Returns NotFound if the file cannot
/// be opened.
StatusOr<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delimiter);

/// Writes rows as a delimiter-separated file (no quoting; fields must not
/// contain the delimiter or newlines — CHECKed).
Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delimiter);

}  // namespace msopds

#endif  // MSOPDS_UTIL_CSV_H_
