#ifndef MSOPDS_UTIL_CSV_H_
#define MSOPDS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace msopds {

/// Reads a delimiter-separated file into rows of fields. Blank lines and
/// lines starting with '#' are skipped. Returns NotFound if the file cannot
/// be opened.
StatusOr<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delimiter);

/// One parsed row plus the 1-based line it came from in the source file,
/// so loaders can report errors as "path:line: reason".
struct DelimitedRow {
  std::vector<std::string> fields;
  int64_t line = 0;
};

/// Like ReadDelimited but preserves source line numbers (skipped blank /
/// comment lines still advance the counter).
StatusOr<std::vector<DelimitedRow>> ReadDelimitedWithLines(
    const std::string& path, char delimiter);

/// Writes rows as a delimiter-separated file (no quoting; fields must not
/// contain the delimiter or newlines — CHECKed).
Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delimiter);

}  // namespace msopds

#endif  // MSOPDS_UTIL_CSV_H_
