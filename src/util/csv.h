#ifndef MSOPDS_UTIL_CSV_H_
#define MSOPDS_UTIL_CSV_H_

#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace msopds {

/// Reads a delimiter-separated file into rows of fields. Blank lines and
/// lines starting with '#' are skipped. Returns NotFound if the file cannot
/// be opened.
StatusOr<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delimiter);

/// One parsed row plus the 1-based line it came from in the source file,
/// so loaders can report errors as "path:line: reason".
struct DelimitedRow {
  std::vector<std::string> fields;
  int64_t line = 0;
};

/// Like ReadDelimited but preserves source line numbers (skipped blank /
/// comment lines still advance the counter).
StatusOr<std::vector<DelimitedRow>> ReadDelimitedWithLines(
    const std::string& path, char delimiter);

/// Streaming variant: one pass over the file, invoking `fn` for every
/// non-blank, non-comment row with the parsed row and the byte offset of
/// the start of its line. The row object (and the line buffer behind it)
/// is reused between calls — copy out anything that must outlive the
/// callback. A non-OK status from `fn` aborts the scan and is returned.
/// Peak memory is one line, independent of file size.
Status ForEachDelimitedRow(
    const std::string& path, char delimiter,
    const std::function<Status(const DelimitedRow& row, int64_t byte_offset)>&
        fn);

/// Writes rows as a delimiter-separated file (no quoting; fields must not
/// contain the delimiter or newlines — CHECKed).
Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delimiter);

}  // namespace msopds

#endif  // MSOPDS_UTIL_CSV_H_
