#ifndef MSOPDS_UTIL_STRING_UTIL_H_
#define MSOPDS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace msopds {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a double; returns false on malformed input (no CHECK).
bool ParseDouble(std::string_view text, double* value);

/// Parses a non-negative int64; returns false on malformed input.
bool ParseInt64(std::string_view text, int64_t* value);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace msopds

#endif  // MSOPDS_UTIL_STRING_UTIL_H_
