#include "graph/item_graph_builder.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace msopds {

UndirectedGraph BuildItemGraph(const std::vector<RaterRecord>& records,
                               int64_t num_items,
                               const ItemGraphOptions& options) {
  MSOPDS_CHECK_GT(options.overlap_fraction, 0.0);
  MSOPDS_CHECK_LE(options.overlap_fraction, 1.0);

  // Group items by user and count raters per item.
  std::unordered_map<int64_t, std::vector<int64_t>> items_by_user;
  std::vector<int64_t> rater_count(static_cast<size_t>(num_items), 0);
  for (const RaterRecord& r : records) {
    MSOPDS_CHECK_GE(r.item, 0);
    MSOPDS_CHECK_LT(r.item, num_items);
    items_by_user[r.user].push_back(r.item);
    ++rater_count[static_cast<size_t>(r.item)];
  }

  // Count co-raters per item pair through each user's item list.
  std::unordered_map<uint64_t, int64_t> pair_count;
  // determinism-lint: order-insensitive (commutative += into pair_count)
  for (const auto& [user, items] : items_by_user) {
    (void)user;
    if (static_cast<int64_t>(items.size()) > options.max_items_per_user)
      continue;
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        int64_t a = items[i], b = items[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        ++pair_count[(static_cast<uint64_t>(b) << 32) |
                     static_cast<uint64_t>(a)];
      }
    }
  }

  UndirectedGraph graph(num_items);
  // Edge insertion order feeds the adjacency lists and, through
  // AppendDirectedEdges, the GNN kernels' accumulation order — hash
  // iteration order here would make results depend on the standard
  // library's bucket layout. Iterate the pairs in sorted key order so
  // the built graph is a pure function of the records.
  std::vector<uint64_t> keys;
  keys.reserve(pair_count.size());
  // determinism-lint: order-insensitive (keys are sorted below)
  for (const auto& [key, shared] : pair_count) {
    (void)shared;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const uint64_t key : keys) {
    const int64_t shared = pair_count.at(key);
    const int64_t a = static_cast<int64_t>(key & 0xffffffffULL);
    const int64_t b = static_cast<int64_t>(key >> 32);
    const int64_t ra = rater_count[static_cast<size_t>(a)];
    const int64_t rb = rater_count[static_cast<size_t>(b)];
    if (ra < options.min_raters || rb < options.min_raters) continue;
    const int64_t union_size = ra + rb - shared;
    if (union_size <= 0) continue;
    const double jaccard =
        static_cast<double>(shared) / static_cast<double>(union_size);
    if (jaccard > options.overlap_fraction) graph.AddEdge(a, b);
  }
  return graph;
}

}  // namespace msopds
