#include "graph/undirected_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace msopds {

UndirectedGraph::UndirectedGraph(int64_t num_nodes) : num_nodes_(num_nodes) {
  MSOPDS_CHECK_GE(num_nodes, 0);
  adjacency_.resize(static_cast<size_t>(num_nodes));
}

uint64_t UndirectedGraph::EncodeEdge(int64_t a, int64_t b) {
  const uint64_t lo = static_cast<uint64_t>(std::min(a, b));
  const uint64_t hi = static_cast<uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

bool UndirectedGraph::AddEdge(int64_t a, int64_t b) {
  MSOPDS_CHECK_GE(a, 0);
  MSOPDS_CHECK_LT(a, num_nodes_);
  MSOPDS_CHECK_GE(b, 0);
  MSOPDS_CHECK_LT(b, num_nodes_);
  if (a == b) return false;
  if (!edge_set_.insert(EncodeEdge(a, b)).second) return false;
  adjacency_[static_cast<size_t>(a)].push_back(b);
  adjacency_[static_cast<size_t>(b)].push_back(a);
  ++num_edges_;
  return true;
}

bool UndirectedGraph::RemoveEdge(int64_t a, int64_t b) {
  if (a == b) return false;
  if (edge_set_.erase(EncodeEdge(a, b)) == 0) return false;
  auto erase_from = [](std::vector<int64_t>* list, int64_t value) {
    auto it = std::find(list->begin(), list->end(), value);
    list->erase(it);
  };
  erase_from(&adjacency_[static_cast<size_t>(a)], b);
  erase_from(&adjacency_[static_cast<size_t>(b)], a);
  --num_edges_;
  return true;
}

bool UndirectedGraph::HasEdge(int64_t a, int64_t b) const {
  if (a == b) return false;
  if (a < 0 || b < 0 || a >= num_nodes_ || b >= num_nodes_) return false;
  return edge_set_.count(EncodeEdge(a, b)) > 0;
}

const std::vector<int64_t>& UndirectedGraph::Neighbors(int64_t v) const {
  MSOPDS_CHECK_GE(v, 0);
  MSOPDS_CHECK_LT(v, num_nodes_);
  return adjacency_[static_cast<size_t>(v)];
}

int64_t UndirectedGraph::Degree(int64_t v) const {
  return static_cast<int64_t>(Neighbors(v).size());
}

std::vector<std::pair<int64_t, int64_t>> UndirectedGraph::Edges() const {
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (int64_t a = 0; a < num_nodes_; ++a) {
    for (int64_t b : adjacency_[static_cast<size_t>(a)]) {
      if (a < b) edges.emplace_back(a, b);
    }
  }
  return edges;
}

void UndirectedGraph::AppendDirectedEdges(std::vector<int64_t>* dst,
                                          std::vector<int64_t>* src) const {
  // Each undirected edge appears once per direction.
  dst->reserve(dst->size() + 2 * static_cast<size_t>(num_edges_));
  src->reserve(src->size() + 2 * static_cast<size_t>(num_edges_));
  for (int64_t a = 0; a < num_nodes_; ++a) {
    for (int64_t b : adjacency_[static_cast<size_t>(a)]) {
      dst->push_back(a);
      src->push_back(b);
    }
  }
}

void UndirectedGraph::AddNodes(int64_t count) {
  MSOPDS_CHECK_GE(count, 0);
  num_nodes_ += count;
  adjacency_.resize(static_cast<size_t>(num_nodes_));
}

}  // namespace msopds
