#include "graph/undirected_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {

UndirectedGraph::UndirectedGraph(int64_t num_nodes) : num_nodes_(num_nodes) {
  MSOPDS_CHECK_GE(num_nodes, 0);
  adjacency_.resize(static_cast<size_t>(num_nodes));
}

uint64_t UndirectedGraph::EncodeEdge(int64_t a, int64_t b) {
  const uint64_t lo = static_cast<uint64_t>(std::min(a, b));
  const uint64_t hi = static_cast<uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

bool UndirectedGraph::AddEdge(int64_t a, int64_t b) {
  MSOPDS_CHECK_GE(a, 0);
  MSOPDS_CHECK_LT(a, num_nodes_);
  MSOPDS_CHECK_GE(b, 0);
  MSOPDS_CHECK_LT(b, num_nodes_);
  if (a == b) return false;
  if (!edge_set_.insert(EncodeEdge(a, b)).second) return false;
  adjacency_[static_cast<size_t>(a)].push_back(b);
  adjacency_[static_cast<size_t>(b)].push_back(a);
  ++num_edges_;
  return true;
}

bool UndirectedGraph::RemoveEdge(int64_t a, int64_t b) {
  if (a == b) return false;
  if (edge_set_.erase(EncodeEdge(a, b)) == 0) return false;
  auto erase_from = [](std::vector<int64_t>* list, int64_t value) {
    auto it = std::find(list->begin(), list->end(), value);
    list->erase(it);
  };
  erase_from(&adjacency_[static_cast<size_t>(a)], b);
  erase_from(&adjacency_[static_cast<size_t>(b)], a);
  --num_edges_;
  return true;
}

bool UndirectedGraph::HasEdge(int64_t a, int64_t b) const {
  if (a == b) return false;
  if (a < 0 || b < 0 || a >= num_nodes_ || b >= num_nodes_) return false;
  return edge_set_.count(EncodeEdge(a, b)) > 0;
}

const std::vector<int64_t>& UndirectedGraph::Neighbors(int64_t v) const {
  MSOPDS_CHECK_GE(v, 0);
  MSOPDS_CHECK_LT(v, num_nodes_);
  return adjacency_[static_cast<size_t>(v)];
}

int64_t UndirectedGraph::Degree(int64_t v) const {
  return static_cast<int64_t>(Neighbors(v).size());
}

std::vector<std::pair<int64_t, int64_t>> UndirectedGraph::Edges() const {
  std::vector<std::pair<int64_t, int64_t>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (int64_t a = 0; a < num_nodes_; ++a) {
    for (int64_t b : adjacency_[static_cast<size_t>(a)]) {
      if (a < b) edges.emplace_back(a, b);
    }
  }
  return edges;
}

void UndirectedGraph::AppendDirectedEdges(std::vector<int64_t>* dst,
                                          std::vector<int64_t>* src) const {
  // Each undirected edge appears once per direction.
  dst->reserve(dst->size() + 2 * static_cast<size_t>(num_edges_));
  src->reserve(src->size() + 2 * static_cast<size_t>(num_edges_));
  for (int64_t a = 0; a < num_nodes_; ++a) {
    for (int64_t b : adjacency_[static_cast<size_t>(a)]) {
      dst->push_back(a);
      src->push_back(b);
    }
  }
}

void UndirectedGraph::AddNodes(int64_t count) {
  MSOPDS_CHECK_GE(count, 0);
  num_nodes_ += count;
  adjacency_.resize(static_cast<size_t>(num_nodes_));
}

StatusOr<UndirectedGraph> UndirectedGraph::FromAdjacency(
    std::vector<std::vector<int64_t>> adjacency) {
  const int64_t num_nodes = static_cast<int64_t>(adjacency.size());
  // Directed occurrences (a -> b), used both for duplicate detection and
  // for the symmetry check below.
  std::unordered_set<uint64_t> directed;
  int64_t total_entries = 0;
  for (int64_t a = 0; a < num_nodes; ++a) {
    for (int64_t b : adjacency[static_cast<size_t>(a)]) {
      if (b < 0 || b >= num_nodes) {
        return Status::InvalidArgument(StrFormat(
            "adjacency[%lld] names out-of-range node %lld (num_nodes %lld)",
            static_cast<long long>(a), static_cast<long long>(b),
            static_cast<long long>(num_nodes)));
      }
      if (b == a) {
        return Status::InvalidArgument(
            StrFormat("adjacency[%lld] contains a self-loop",
                      static_cast<long long>(a)));
      }
      const uint64_t key =
          (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
      if (!directed.insert(key).second) {
        return Status::InvalidArgument(
            StrFormat("adjacency[%lld] lists neighbor %lld twice",
                      static_cast<long long>(a), static_cast<long long>(b)));
      }
      ++total_entries;
    }
  }
  UndirectedGraph graph(num_nodes);
  for (int64_t a = 0; a < num_nodes; ++a) {
    for (int64_t b : adjacency[static_cast<size_t>(a)]) {
      const uint64_t mate =
          (static_cast<uint64_t>(b) << 32) | static_cast<uint64_t>(a);
      if (directed.count(mate) == 0) {
        return Status::InvalidArgument(StrFormat(
            "adjacency is asymmetric: %lld lists %lld but not vice versa",
            static_cast<long long>(a), static_cast<long long>(b)));
      }
      graph.edge_set_.insert(EncodeEdge(a, b));
    }
  }
  graph.adjacency_ = std::move(adjacency);
  graph.num_edges_ = total_entries / 2;
  return graph;
}

bool UndirectedGraph::SameStructure(const UndirectedGraph& other) const {
  return num_nodes_ == other.num_nodes_ && num_edges_ == other.num_edges_ &&
         adjacency_ == other.adjacency_;
}

}  // namespace msopds
