#ifndef MSOPDS_GRAPH_UNDIRECTED_GRAPH_H_
#define MSOPDS_GRAPH_UNDIRECTED_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/status.h"

namespace msopds {

/// Simple undirected graph with O(1) edge lookup and adjacency lists,
/// used for both the social network G_U (over users) and the item graph
/// G_I (over items). No self-loops, no parallel edges.
class UndirectedGraph {
 public:
  UndirectedGraph() = default;
  explicit UndirectedGraph(int64_t num_nodes);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }

  /// Adds an undirected edge; returns false (and does nothing) if the edge
  /// already exists or a == b. CHECK-fails on out-of-range nodes.
  bool AddEdge(int64_t a, int64_t b);

  /// Removes an undirected edge; returns false if absent.
  bool RemoveEdge(int64_t a, int64_t b);

  bool HasEdge(int64_t a, int64_t b) const;

  /// Neighbor list of v (insertion order).
  const std::vector<int64_t>& Neighbors(int64_t v) const;

  int64_t Degree(int64_t v) const;

  /// All edges with a < b.
  std::vector<std::pair<int64_t, int64_t>> Edges() const;

  /// Appends both directed copies of every edge to (dst, src): for each
  /// undirected {a, b}, appends (a<-b) and (b<-a). Used by the GNN
  /// convolution kernels.
  void AppendDirectedEdges(std::vector<int64_t>* dst,
                           std::vector<int64_t>* src) const;

  /// Grows the node set (new nodes start isolated). Used to append fake
  /// user accounts to the social network.
  void AddNodes(int64_t count);

  /// Reconstructs a graph from explicit per-node adjacency lists,
  /// preserving each list's order exactly (the shard merge path: shards
  /// store adjacency slices verbatim, and Neighbors() order is part of
  /// the bit-identity contract, so the merged graph must not re-insert
  /// edges through AddEdge). Returns InvalidArgument unless the lists
  /// describe a valid simple undirected graph: every neighbor in range,
  /// no self-loops, no duplicate entries, and every a->b mirrored by
  /// b->a.
  static StatusOr<UndirectedGraph> FromAdjacency(
      std::vector<std::vector<int64_t>> adjacency);

  /// True iff both graphs have identical node counts and identical
  /// adjacency lists element-for-element (stronger than set equality:
  /// Neighbors() order must match too).
  bool SameStructure(const UndirectedGraph& other) const;

 private:
  static uint64_t EncodeEdge(int64_t a, int64_t b);

  int64_t num_nodes_ = 0;
  int64_t num_edges_ = 0;
  std::vector<std::vector<int64_t>> adjacency_;
  std::unordered_set<uint64_t> edge_set_;
};

}  // namespace msopds

#endif  // MSOPDS_GRAPH_UNDIRECTED_GRAPH_H_
