#include "graph/graph_stats.h"

#include <cmath>
#include <map>
#include <unordered_set>
#include <vector>

#include "util/string_util.h"

namespace msopds {

std::string GraphStats::ToString() const {
  return StrFormat(
      "nodes=%lld edges=%lld mean_deg=%.2f max_deg=%lld isolated=%lld "
      "components=%lld largest=%lld clustering=%.4f tail_exp=%.2f",
      static_cast<long long>(num_nodes), static_cast<long long>(num_edges),
      mean_degree, static_cast<long long>(max_degree),
      static_cast<long long>(isolated_nodes),
      static_cast<long long>(connected_components),
      static_cast<long long>(largest_component), clustering_coefficient,
      degree_tail_exponent);
}

GraphStats ComputeGraphStats(const UndirectedGraph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  if (graph.num_nodes() == 0) return stats;

  stats.mean_degree =
      2.0 * static_cast<double>(graph.num_edges()) /
      static_cast<double>(graph.num_nodes());

  // Degrees, isolated nodes, degree histogram.
  std::map<int64_t, int64_t> degree_histogram;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const int64_t d = graph.Degree(v);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated_nodes;
    ++degree_histogram[d];
  }

  // Connected components by BFS.
  std::vector<char> visited(static_cast<size_t>(graph.num_nodes()), 0);
  std::vector<int64_t> queue;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    if (visited[static_cast<size_t>(v)]) continue;
    ++stats.connected_components;
    int64_t component_size = 0;
    queue.clear();
    queue.push_back(v);
    visited[static_cast<size_t>(v)] = 1;
    while (!queue.empty()) {
      const int64_t u = queue.back();
      queue.pop_back();
      ++component_size;
      for (int64_t w : graph.Neighbors(u)) {
        if (!visited[static_cast<size_t>(w)]) {
          visited[static_cast<size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
    }
    stats.largest_component = std::max(stats.largest_component, component_size);
  }

  // Triangles and wedges for the global clustering coefficient.
  double triangles3 = 0.0;  // counts each triangle 3 times overall
  double wedges = 0.0;
  for (int64_t v = 0; v < graph.num_nodes(); ++v) {
    const auto& neighbors = graph.Neighbors(v);
    const double d = static_cast<double>(neighbors.size());
    wedges += d * (d - 1.0) / 2.0;
    for (size_t i = 0; i < neighbors.size(); ++i) {
      for (size_t j = i + 1; j < neighbors.size(); ++j) {
        if (graph.HasEdge(neighbors[i], neighbors[j])) triangles3 += 1.0;
      }
    }
  }
  stats.clustering_coefficient = wedges > 0.0 ? triangles3 / wedges : 0.0;

  // Log-log least squares over the degree histogram tail.
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  int64_t n = 0;
  for (const auto& [degree, count] : degree_histogram) {
    if (degree < 1) continue;
    const double x = std::log(static_cast<double>(degree));
    const double y = std::log(static_cast<double>(count));
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
    ++n;
  }
  if (n >= 2) {
    const double denom = static_cast<double>(n) * sum_xx - sum_x * sum_x;
    if (std::fabs(denom) > 1e-12) {
      stats.degree_tail_exponent =
          -(static_cast<double>(n) * sum_xy - sum_x * sum_y) / denom;
    }
  }
  return stats;
}

}  // namespace msopds
