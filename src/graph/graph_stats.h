#ifndef MSOPDS_GRAPH_GRAPH_STATS_H_
#define MSOPDS_GRAPH_GRAPH_STATS_H_

#include <string>

#include "graph/undirected_graph.h"

namespace msopds {

/// Aggregate structural statistics of a graph. Used by the synthetic data
/// generators' self-checks and by the dataset_tour example.
struct GraphStats {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  double mean_degree = 0.0;
  int64_t max_degree = 0;
  int64_t isolated_nodes = 0;
  int64_t connected_components = 0;
  int64_t largest_component = 0;
  /// Global clustering coefficient: 3 * triangles / open-or-closed wedges.
  double clustering_coefficient = 0.0;
  /// Fitted power-law-ish tail exponent from the degree distribution
  /// (simple log-log regression over degrees >= 1; 0 when undefined).
  double degree_tail_exponent = 0.0;

  std::string ToString() const;
};

/// Computes statistics in one pass (O(V + E + sum deg^2) for triangles).
GraphStats ComputeGraphStats(const UndirectedGraph& graph);

}  // namespace msopds

#endif  // MSOPDS_GRAPH_GRAPH_STATS_H_
