#ifndef MSOPDS_GRAPH_ITEM_GRAPH_BUILDER_H_
#define MSOPDS_GRAPH_ITEM_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/undirected_graph.h"

namespace msopds {

/// One (user, item) incidence used for item-graph construction.
struct RaterRecord {
  int64_t user = 0;
  int64_t item = 0;
};

/// Options for BuildItemGraph.
struct ItemGraphOptions {
  /// Connect items i and j when |raters(i) ∩ raters(j)| exceeds
  /// `overlap_fraction` of |raters(i) ∪ raters(j)| (Jaccard). The paper
  /// (§VI-A1, following ConsisRec) uses "share over 50% of users".
  double overlap_fraction = 0.5;
  /// Items with fewer raters than this are not linked (guards the
  /// degenerate 1-rater case from creating cliques).
  int64_t min_raters = 1;
  /// Users who rated more than this many items are skipped when counting
  /// co-rating pairs (bounds the quadratic pair expansion; such power
  /// users carry little co-rating signal per pair).
  int64_t max_items_per_user = 256;
};

/// Builds the item correlation graph from co-rating overlap, the
/// construction the paper borrows from ConsisRec [12].
UndirectedGraph BuildItemGraph(const std::vector<RaterRecord>& records,
                               int64_t num_items,
                               const ItemGraphOptions& options = {});

}  // namespace msopds

#endif  // MSOPDS_GRAPH_ITEM_GRAPH_BUILDER_H_
