#include "tensor/compile.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tensor/verify.h"
#include "util/logging.h"

namespace msopds {
namespace {

// Free-event sentinel for buffers that escaped the recording scope.
constexpr int64_t kLiveToEnd = std::numeric_limits<int64_t>::max();

// Slab offsets are 8-double (64-byte) aligned so planned buffers start on
// cache-line boundaries, like the arena's size-class blocks.
constexpr int64_t kAlignDoubles = 8;

int64_t AlignedSize(int64_t size) {
  return (size + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
}

// Installs an allocation hook for the current scope and restores the
// previous one (bumping the epoch both ways, so storages created under
// this installation never call a stale hook).
class ScopedAllocHook {
 public:
  explicit ScopedAllocHook(TensorStorage::AllocHook* hook)
      : previous_(TensorStorage::SetThreadAllocHook(hook)) {}
  ~ScopedAllocHook() { TensorStorage::SetThreadAllocHook(previous_); }
  ScopedAllocHook(const ScopedAllocHook&) = delete;
  ScopedAllocHook& operator=(const ScopedAllocHook&) = delete;

 private:
  TensorStorage::AllocHook* previous_;
};

// Ops whose kernels are pure same-shape elementwise maps — the fusion
// planner may chain these (tensor/simd.h implements their inner loops).
bool IsElementwiseOp(const std::string& op) {
  static const std::set<std::string> kElementwise = {
      "Add", "Sub",       "Mul",       "Div", "Neg", "ScalarMul",
      "AddScalar", "Exp", "Log", "Sqrt", "Where"};
  return kElementwise.count(op) > 0;
}

}  // namespace

// Recording hook: assigns slot ids in creation order and stamps each
// slot's [alloc, free) position on one global event timeline.
class TapeRecorder : public TensorStorage::AllocHook {
 public:
  explicit TapeRecorder(CompiledTape* tape) : tape_(tape) {}

  double* OnCreate(int64_t size, int64_t* slot,
                   std::shared_ptr<void>* keepalive) override {
    (void)keepalive;
    *slot = static_cast<int64_t>(tape_->slots_.size());
    tape_->slots_.push_back({size, next_event_++, kLiveToEnd, 0});
    return nullptr;  // record only; the arena still serves the buffer
  }

  void OnDestroy(int64_t slot) override {
    tape_->slots_[static_cast<size_t>(slot)].free_event = next_event_++;
  }

 private:
  CompiledTape* tape_;
  int64_t next_event_ = 0;
};

// Replay hook: serves allocation i of the run at the planned offset of
// slot i. Any departure from the recorded sequence (count or size)
// permanently downgrades the rest of the run to the arena.
class TapeReplayer : public TensorStorage::AllocHook {
 public:
  explicit TapeReplayer(CompiledTape* tape) : tape_(tape) {}

  double* OnCreate(int64_t size, int64_t* slot,
                   std::shared_ptr<void>* keepalive) override {
    (void)slot;
    if (diverged_) return nullptr;
    if (cursor_ >= tape_->slots_.size() ||
        tape_->slots_[cursor_].size != size) {
      diverged_ = true;
      ++tape_->stats_.replay_fallbacks;
      return nullptr;
    }
    const CompiledTape::Slot& s = tape_->slots_[cursor_++];
    *keepalive = tape_->slab_;
    return tape_->slab_->data() + s.offset;
  }

  void OnDestroy(int64_t slot) override { (void)slot; }

 private:
  CompiledTape* tape_;
  size_t cursor_ = 0;
  bool diverged_ = false;
};

std::shared_ptr<CompiledTape> CompiledTape::Compile(const BuildFn& build) {
  auto tape = std::shared_ptr<CompiledTape>(new CompiledTape());
  TapeRecorder recorder(tape.get());
  {
    ScopedAllocHook install(&recorder);
    Variable root = build();
    tape->HarvestGraph(root);
    // `root` dies here, still inside the recording scope, so the frees of
    // every interior tape buffer are captured — that is what gives the
    // planner lifetimes to overlap. Results the builder moved out through
    // captures miss their free event instead and stay live to the end.
  }
  tape->PlanOffsets();
  tape->PlanFusion();
  return tape;
}

Variable CompiledTape::Replay(const BuildFn& build) {
  EnsureSlab();
  TapeReplayer replayer(this);
  Variable root;
  {
    ScopedAllocHook install(&replayer);
    root = build();
  }
  ++stats_.replays;
  return root;
}

void CompiledTape::HarvestGraph(const Variable& root) {
  if (!root.defined()) return;
  std::vector<const internal::Node*> stack = {root.node().get()};
  std::unordered_set<const internal::Node*> visited = {stack[0]};
  std::vector<const internal::Node*> ops;
  while (!stack.empty()) {
    const internal::Node* node = stack.back();
    stack.pop_back();
    if (!node->inputs.empty()) ops.push_back(node);
    for (const Variable& input : node->inputs) {
      const internal::Node* in = input.node().get();
      if (in != nullptr && visited.insert(in).second) stack.push_back(in);
    }
  }
  // seq order is creation order, which is a topological execution order.
  std::sort(ops.begin(), ops.end(),
            [](const internal::Node* a, const internal::Node* b) {
              return a->seq < b->seq;
            });
  schedule_.reserve(ops.size());
  for (const internal::Node* node : ops) {
    NodeInfo info;
    info.op = node->op_name;
    info.seq = node->seq;
    info.shape = node->value.shape();
    info.input_seqs.reserve(node->inputs.size());
    info.input_shapes.reserve(node->inputs.size());
    for (const Variable& input : node->inputs) {
      info.input_seqs.push_back(input.node()->seq);
      info.input_shapes.push_back(input.value().shape());
    }
    schedule_.push_back(std::move(info));
  }
  stats_.ops = static_cast<int64_t>(schedule_.size());
}

void CompiledTape::PlanOffsets() {
  stats_.allocations = static_cast<int64_t>(slots_.size());
  struct Event {
    int64_t time = 0;
    bool is_alloc = false;
    size_t slot = 0;
  };
  std::vector<Event> events;
  events.reserve(2 * slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    stats_.naive_doubles += AlignedSize(slots_[i].size);
    events.push_back({slots_[i].alloc_event, true, i});
    if (slots_[i].free_event != kLiveToEnd) {
      events.push_back({slots_[i].free_event, false, i});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.time < b.time; });

  // First-fit over a coalescing interval free list; allocations that fit
  // no hole extend the slab's high-water mark.
  std::map<int64_t, int64_t> free_list;  // offset -> length
  int64_t high_water = 0;
  int64_t live = 0;
  for (const Event& event : events) {
    Slot& slot = slots_[event.slot];
    const int64_t need = AlignedSize(slot.size);
    if (event.is_alloc) {
      if (need == 0) {
        slot.offset = 0;
        continue;
      }
      int64_t offset = -1;
      for (auto it = free_list.begin(); it != free_list.end(); ++it) {
        if (it->second < need) continue;
        offset = it->first;
        const int64_t remaining = it->second - need;
        free_list.erase(it);
        if (remaining > 0) free_list.emplace(offset + need, remaining);
        break;
      }
      if (offset < 0) {
        offset = high_water;
        high_water += need;
      }
      slot.offset = offset;
      live += need;
      stats_.peak_live_doubles = std::max(stats_.peak_live_doubles, live);
    } else {
      if (need == 0) continue;
      live -= need;
      auto [it, inserted] = free_list.emplace(slot.offset, need);
      MSOPDS_CHECK(inserted) << "double free in recorded tape timeline";
      auto next = std::next(it);
      if (next != free_list.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_list.erase(next);
      }
      if (it != free_list.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
          prev->second += it->second;
          free_list.erase(it);
        }
      }
    }
  }
  stats_.slab_doubles = high_water;
}

void CompiledTape::PlanFusion() {
  if (schedule_.empty()) return;
  std::unordered_map<uint64_t, size_t> index_of;
  index_of.reserve(schedule_.size());
  for (size_t i = 0; i < schedule_.size(); ++i) {
    index_of.emplace(schedule_[i].seq, i);
  }
  // Consumer counts within the harvested graph, and each node's sole
  // consumer when it has exactly one.
  std::unordered_map<uint64_t, int> consumers;
  std::unordered_map<uint64_t, uint64_t> sole_consumer;
  for (const NodeInfo& info : schedule_) {
    for (uint64_t in : info.input_seqs) {
      sole_consumer[in] = info.seq;
      ++consumers[in];
    }
  }
  // A chain edge runs producer -> consumer when both are same-shape
  // elementwise ops and the producer has no other consumer (its buffer
  // is dead the moment the consumer runs — the fusable case).
  std::unordered_map<uint64_t, uint64_t> chain_next;
  std::unordered_set<uint64_t> has_incoming;
  for (const NodeInfo& info : schedule_) {
    if (!IsElementwiseOp(info.op)) continue;
    auto count_it = consumers.find(info.seq);
    if (count_it == consumers.end() || count_it->second != 1) continue;
    auto next_it = index_of.find(sole_consumer[info.seq]);
    if (next_it == index_of.end()) continue;
    const NodeInfo& next = schedule_[next_it->second];
    if (!IsElementwiseOp(next.op) || next.shape != info.shape) continue;
    chain_next.emplace(info.seq, next.seq);
    has_incoming.insert(next.seq);
  }
  // Walk maximal chains from their heads, in schedule order.
  for (const NodeInfo& info : schedule_) {
    if (chain_next.count(info.seq) == 0 || has_incoming.count(info.seq) > 0) {
      continue;
    }
    std::vector<uint64_t> chain = {info.seq};
    uint64_t current = info.seq;
    for (auto it = chain_next.find(current); it != chain_next.end();
         it = chain_next.find(current)) {
      current = it->second;
      chain.push_back(current);
    }
    stats_.fused_ops += static_cast<int64_t>(chain.size());
    ++stats_.fusion_chains;
    fusion_chains_.push_back(std::move(chain));
  }
}

void CompiledTape::EnsureSlab() {
  if (slab_ != nullptr) return;
  slab_ = std::make_shared<std::vector<double>>(
      static_cast<size_t>(std::max<int64_t>(stats_.slab_doubles, 1)));
}

Status CompiledTape::Validate() const {
  // Planned offsets: any two buffers whose slab address ranges intersect
  // must have disjoint [alloc, free) lifetimes. Sweep in offset order,
  // keeping the set of ranges still open at the current offset.
  std::vector<size_t> by_offset;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].size > 0) by_offset.push_back(i);
  }
  std::sort(by_offset.begin(), by_offset.end(), [this](size_t a, size_t b) {
    return slots_[a].offset < slots_[b].offset;
  });
  std::vector<size_t> open;
  for (size_t bi : by_offset) {
    const Slot& b = slots_[bi];
    std::vector<size_t> still_open;
    for (size_t ai : open) {
      const Slot& a = slots_[ai];
      if (a.offset + AlignedSize(a.size) <= b.offset) continue;
      still_open.push_back(ai);
      const bool disjoint_lifetimes =
          a.free_event <= b.alloc_event || b.free_event <= a.alloc_event;
      if (!disjoint_lifetimes) {
        return Status::Internal(
            "planned offsets alias two live buffers: slot " +
            std::to_string(ai) + " [offset " + std::to_string(a.offset) +
            ", " + std::to_string(a.size) + " doubles) overlaps slot " +
            std::to_string(bi) + " [offset " + std::to_string(b.offset) +
            ", " + std::to_string(b.size) + " doubles)");
      }
    }
    still_open.push_back(bi);
    open = std::move(still_open);
  }

  // The schedule must be a valid topological execution order.
  std::set<uint64_t> scheduled;
  uint64_t previous_seq = 0;
  for (size_t i = 0; i < schedule_.size(); ++i) {
    const NodeInfo& info = schedule_[i];
    if (i > 0 && info.seq <= previous_seq) {
      return Status::Internal("schedule not in ascending seq order at op " +
                              info.op);
    }
    previous_seq = info.seq;
    scheduled.insert(info.seq);
    for (uint64_t in : info.input_seqs) {
      if (in >= info.seq) {
        return Status::Internal("op " + info.op +
                                " consumes a node recorded after it");
      }
    }
  }

  // Every scheduled op must re-pass its registry shape inference on the
  // shapes captured at record time.
  for (const NodeInfo& info : schedule_) {
    const OpSpec* spec = FindOpSpec(info.op);
    if (spec == nullptr || !spec->infer) continue;  // verifier warns on these
    if (static_cast<size_t>(spec->arity) != info.input_shapes.size()) {
      return Status::Internal("op " + info.op + " recorded " +
                              std::to_string(info.input_shapes.size()) +
                              " inputs, registry arity is " +
                              std::to_string(spec->arity));
    }
    std::vector<Tensor> inputs;
    inputs.reserve(info.input_shapes.size());
    for (const std::vector<int64_t>& shape : info.input_shapes) {
      inputs.push_back(Tensor::Zeros(shape));
    }
    std::vector<const Tensor*> pointers;
    pointers.reserve(inputs.size());
    for (const Tensor& t : inputs) pointers.push_back(&t);
    const Status inferred = spec->infer(pointers, Tensor::Zeros(info.shape));
    if (!inferred.ok()) {
      return Status::Internal("captured shapes of op " + info.op +
                              " fail registry inference: " +
                              inferred.message());
    }
  }

  // Fusion chains: length >= 2, members scheduled, consecutive members
  // connected producer -> consumer, all elementwise over one shape.
  for (const std::vector<uint64_t>& chain : fusion_chains_) {
    if (chain.size() < 2) {
      return Status::Internal("fusion chain of length " +
                              std::to_string(chain.size()));
    }
    const NodeInfo* previous = nullptr;
    for (uint64_t seq : chain) {
      if (scheduled.count(seq) == 0) {
        return Status::Internal("fusion chain references unscheduled node");
      }
      const NodeInfo* info = nullptr;
      for (const NodeInfo& candidate : schedule_) {
        if (candidate.seq == seq) {
          info = &candidate;
          break;
        }
      }
      MSOPDS_CHECK(info != nullptr);
      if (!IsElementwiseOp(info->op)) {
        return Status::Internal("fusion chain contains non-elementwise op " +
                                info->op);
      }
      if (previous != nullptr) {
        if (info->shape != previous->shape) {
          return Status::Internal("fusion chain changes shape at op " +
                                  info->op);
        }
        const bool consumes = std::find(info->input_seqs.begin(),
                                        info->input_seqs.end(),
                                        previous->seq) != info->input_seqs.end();
        if (!consumes) {
          return Status::Internal("fusion chain breaks producer-consumer "
                                  "order at op " +
                                  info->op);
        }
      }
      previous = info;
    }
  }
  return Status::Ok();
}

}  // namespace msopds
