#ifndef MSOPDS_TENSOR_SIMD_H_
#define MSOPDS_TENSOR_SIMD_H_

// Vectorized inner-loop primitives for the tensor kernels (DESIGN.md §14).
//
// This header is the *only* sanctioned home for raw SIMD intrinsics in the
// repo (determinism-lint rule 5): every kernel that wants vector code calls
// one of the primitives below, never an intrinsic directly, so the numeric
// contract lives in exactly one place.
//
// Contract. Every primitive has one semantic definition, shared verbatim by
// all backends:
//
//  * Elementwise maps (Add/Sub/Mul/Div/Scale/Offset/Neg/Sqrt/Axpy/
//    AddInPlace) perform the same IEEE-754 double operation per element in
//    every backend. AVX2 mul/add/div/sqrt are IEEE-exact and fused
//    multiply-add is never emitted (no fmadd intrinsics here; the build
//    compiles with -ffp-contract=off so the scalar fallback cannot be
//    contracted either). These primitives are therefore *bit-exact* across
//    backends and across the MSOPDS_SIMD switch.
//
//  * Reductions (Dot/Sum/MaxAbs) use a fixed 4-lane accumulation order:
//    lane j accumulates elements j, j+4, j+8, ... (the tail of n mod 4
//    elements lands in lanes 0..r-1), and the four lane partials are folded
//    as (l0 + l1) + (l2 + l3). The scalar fallback implements the *same*
//    4-lane schedule with four named accumulators, so reductions are also
//    bit-exact across backends — but they differ (by normal ULP-level
//    reassociation) from a naive left-to-right sum. Callers that used to
//    reduce left-to-right get deterministically different low bits the day
//    they switch to these primitives; DESIGN.md §14 records which results
//    changed. Lane order never depends on thread count, so the
//    bit-identical-across-threads contract (§9) is untouched.
//
// Dispatch. The backend is picked once per process:
//   - compile-time: MSOPDS_SIMD=OFF defines MSOPDS_SIMD_DISABLED and
//     removes the vector paths entirely (pure scalar build);
//   - runtime: __builtin_cpu_supports("avx2") gates the x86 path, so a
//     binary built on an AVX2 machine still runs (scalar) on older CPUs;
//   - env override: MSOPDS_SIMD=0 in the environment forces the scalar
//     fallback at startup even in a vector-enabled build — this is how the
//     parity tests A/B the two paths inside one binary.
//
// Vector functions carry per-function target attributes instead of a
// global -mavx2 so enabling SIMD cannot change code generation (and hence
// numerics) anywhere outside this header.
//
// Quantized-serving kernels (DESIGN.md §15). DotI8 is pure int32 integer
// arithmetic — integer addition is associative, so it is bit-exact across
// backends by construction (the AVX2 path widens int8 pairs to int16 and
// uses the madd lane pipeline; NEON uses the widening-multiply path).
// DotF16 widens IEEE binary16 storage to double exactly (binary16 →
// binary32 → binary64 conversions are value-preserving) and then runs the
// same fixed 4-lane reduction schedule as Dot, so it shares Dot's
// bit-exact-across-backends contract. The x86 DotF16 vector path needs
// F16C on top of AVX2 and falls back to the scalar reference when the
// probe says F16C is absent.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>

#if !defined(MSOPDS_SIMD_DISABLED) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(_M_X64))
#define MSOPDS_SIMD_X86 1
#include <immintrin.h>
#elif !defined(MSOPDS_SIMD_DISABLED) && defined(__GNUC__) && \
    defined(__aarch64__)
#define MSOPDS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace msopds {
namespace simd {

enum class Backend {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

namespace internal {

inline Backend ProbeBackend() {
  if (const char* env = std::getenv("MSOPDS_SIMD")) {
    if (env[0] == '0' && env[1] == '\0') return Backend::kScalar;
  }
#if defined(MSOPDS_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
  return Backend::kScalar;
#elif defined(MSOPDS_SIMD_NEON)
  return Backend::kNeon;  // Baseline AArch64 always has Advanced SIMD.
#else
  return Backend::kScalar;
#endif
}

inline Backend& ActiveBackendSlot() {
  static Backend backend = ProbeBackend();
  return backend;
}

}  // namespace internal

/// Backend picked at process start (compile switch, CPUID probe, and the
/// MSOPDS_SIMD=0 env override). Stable for the process lifetime, except
/// under the test-only override below.
inline Backend ActiveBackend() { return internal::ActiveBackendSlot(); }

namespace internal {

/// Test-only A/B switch: forces the dispatch wrappers onto `backend` and
/// returns the previous choice so parity tests can compare the vector
/// and scalar paths inside one process. Only kScalar and the probed
/// backend are safe choices (forcing a vector backend the CPU lacks is
/// an illegal-instruction crash). Call from single-threaded test code,
/// never in parallel regions.
inline Backend SetBackendForTesting(Backend backend) {
  Backend previous = ActiveBackendSlot();
  ActiveBackendSlot() = backend;
  return previous;
}

}  // namespace internal

inline const char* BackendName() {
  switch (ActiveBackend()) {
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
    case Backend::kScalar:
      return "scalar";
  }
  return "scalar";
}

/// True when a vector backend (not the scalar fallback) is active.
inline bool VectorActive() { return ActiveBackend() != Backend::kScalar; }

namespace internal {

/// F16C probe for the DotF16 vector path. AVX2 does not imply F16C, so
/// the binary16 kernel carries its own gate; NEON baseline AArch64 has
/// the half-width conversions unconditionally.
inline bool F16cSupported() {
#if defined(MSOPDS_SIMD_X86)
  static const bool supported = __builtin_cpu_supports("f16c");
  return supported;
#else
  return true;
#endif
}

}  // namespace internal

/// Exact widening of an IEEE binary16 bit pattern to double. Every
/// binary16 value (including subnormals and infinities) is representable
/// in binary64, so this conversion is value-preserving and identical to
/// what the hardware F16C / NEON conversion paths produce.
inline double HalfToDouble(uint16_t h) {
  const int sign = (h >> 15) & 0x1;
  const int exponent = (h >> 10) & 0x1F;
  const int mantissa = h & 0x3FF;
  double magnitude;
  if (exponent == 0) {
    magnitude = std::ldexp(static_cast<double>(mantissa), -24);
  } else if (exponent == 31) {
    magnitude = mantissa == 0 ? std::numeric_limits<double>::infinity()
                              : std::numeric_limits<double>::quiet_NaN();
  } else {
    magnitude =
        std::ldexp(static_cast<double>(mantissa | 0x400), exponent - 25);
  }
  return sign != 0 ? -magnitude : magnitude;
}

// ---------------------------------------------------------------------------
// Scalar fallback. The reference semantics: reductions use the same 4-lane
// schedule as the vector paths, with four named accumulators.
//
// Codegen for the reference is pinned to plain scalar instructions. GCC's
// autovectorizer would otherwise turn these loops into 2-lane SSE code —
// the bits stay identical (the arithmetic DAG is unchanged), but then
// "scalar" silently means "whatever the autovectorizer emitted", which
// varies with -O level and compiler, and the scalar-vs-vector table in
// BENCH_simd.json stops measuring the hand-written backends against the
// reference. Only codegen is affected; every parity test passes with or
// without the pin.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) && !defined(__clang__)
#define MSOPDS_SCALAR_NOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define MSOPDS_SCALAR_NOVEC
#endif

namespace scalar {

MSOPDS_SCALAR_NOVEC inline double Dot(const double* a, const double* b, int64_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  if (i < n) l0 += a[i] * b[i];
  if (i + 1 < n) l1 += a[i + 1] * b[i + 1];
  if (i + 2 < n) l2 += a[i + 2] * b[i + 2];
  return (l0 + l1) + (l2 + l3);
}

MSOPDS_SCALAR_NOVEC inline double Sum(const double* a, int64_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += a[i];
    l1 += a[i + 1];
    l2 += a[i + 2];
    l3 += a[i + 3];
  }
  if (i < n) l0 += a[i];
  if (i + 1 < n) l1 += a[i + 1];
  if (i + 2 < n) l2 += a[i + 2];
  return (l0 + l1) + (l2 + l3);
}

MSOPDS_SCALAR_NOVEC inline double MaxAbs(const double* a, int64_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 = std::max(l0, std::fabs(a[i]));
    l1 = std::max(l1, std::fabs(a[i + 1]));
    l2 = std::max(l2, std::fabs(a[i + 2]));
    l3 = std::max(l3, std::fabs(a[i + 3]));
  }
  if (i < n) l0 = std::max(l0, std::fabs(a[i]));
  if (i + 1 < n) l1 = std::max(l1, std::fabs(a[i + 1]));
  if (i + 2 < n) l2 = std::max(l2, std::fabs(a[i + 2]));
  return std::max(std::max(l0, l1), std::max(l2, l3));
}

MSOPDS_SCALAR_NOVEC inline void Axpy(double alpha, const double* x, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

MSOPDS_SCALAR_NOVEC inline void Axpy4(const double* alpha4, const double* x0,
                                      const double* x1, const double* x2,
                                      const double* x3, double* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    y[i] = (((y[i] + alpha4[0] * x0[i]) + alpha4[1] * x1[i]) +
            alpha4[2] * x2[i]) +
           alpha4[3] * x3[i];
  }
}

MSOPDS_SCALAR_NOVEC inline void AddInPlace(double* y, const double* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

MSOPDS_SCALAR_NOVEC inline void Add(const double* a, const double* b, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

MSOPDS_SCALAR_NOVEC inline void Sub(const double* a, const double* b, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

MSOPDS_SCALAR_NOVEC inline void Mul(const double* a, const double* b, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

MSOPDS_SCALAR_NOVEC inline void Div(const double* a, const double* b, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] / b[i];
}

MSOPDS_SCALAR_NOVEC inline void Scale(const double* a, double alpha, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * alpha;
}

MSOPDS_SCALAR_NOVEC inline void Offset(const double* a, double alpha, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + alpha;
}

MSOPDS_SCALAR_NOVEC inline void Neg(const double* a, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = -a[i];
}

MSOPDS_SCALAR_NOVEC inline void Sqrt(const double* a, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::sqrt(a[i]);
}

// Quantized-serving reference kernels. DotI8 is a plain int32 sum —
// integer addition is associative so no lane schedule is needed for
// cross-backend bit parity. DotF16 widens each binary16 element to
// double (exactly) and then follows the standard 4-lane schedule so its
// bits match Dot over the widened values.

MSOPDS_SCALAR_NOVEC inline int32_t DotI8(const int8_t* a, const int8_t* b,
                                         int64_t n) {
  int32_t sum = 0;
  for (int64_t i = 0; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

MSOPDS_SCALAR_NOVEC inline double DotF16(const uint16_t* a, const uint16_t* b,
                                         int64_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += HalfToDouble(a[i]) * HalfToDouble(b[i]);
    l1 += HalfToDouble(a[i + 1]) * HalfToDouble(b[i + 1]);
    l2 += HalfToDouble(a[i + 2]) * HalfToDouble(b[i + 2]);
    l3 += HalfToDouble(a[i + 3]) * HalfToDouble(b[i + 3]);
  }
  if (i < n) l0 += HalfToDouble(a[i]) * HalfToDouble(b[i]);
  if (i + 1 < n) l1 += HalfToDouble(a[i + 1]) * HalfToDouble(b[i + 1]);
  if (i + 2 < n) l2 += HalfToDouble(a[i + 2]) * HalfToDouble(b[i + 2]);
  return (l0 + l1) + (l2 + l3);
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 backend (x86-64). Per-function target attributes; never fmadd.
// ---------------------------------------------------------------------------

#if defined(MSOPDS_SIMD_X86)

namespace avx2 {

__attribute__((target("avx2"))) inline double Dot(const double* a,
                                                  const double* b, int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  if (i < n) lanes[0] += a[i] * b[i];
  if (i + 1 < n) lanes[1] += a[i + 1] * b[i + 1];
  if (i + 2 < n) lanes[2] += a[i + 2] * b[i + 2];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) inline double Sum(const double* a, int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  if (i < n) lanes[0] += a[i];
  if (i + 1 < n) lanes[1] += a[i + 1];
  if (i + 2 < n) lanes[2] += a[i + 2];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) inline double MaxAbs(const double* a,
                                                     int64_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_andnot_pd(sign, _mm256_loadu_pd(a + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  if (i < n) lanes[0] = std::max(lanes[0], std::fabs(a[i]));
  if (i + 1 < n) lanes[1] = std::max(lanes[1], std::fabs(a[i + 1]));
  if (i + 2 < n) lanes[2] = std::max(lanes[2], std::fabs(a[i + 2]));
  return std::max(std::max(lanes[0], lanes[1]),
                  std::max(lanes[2], lanes[3]));
}

__attribute__((target("avx2"))) inline void Axpy(double alpha, const double* x,
                                                 double* y, int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d vx = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) inline void Axpy4(
    const double* alpha4, const double* x0, const double* x1, const double* x2,
    const double* x3, double* y, int64_t n) {
  const __m256d va0 = _mm256_set1_pd(alpha4[0]);
  const __m256d va1 = _mm256_set1_pd(alpha4[1]);
  const __m256d va2 = _mm256_set1_pd(alpha4[2]);
  const __m256d va3 = _mm256_set1_pd(alpha4[3]);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vy = _mm256_loadu_pd(y + i);
    vy = _mm256_add_pd(vy, _mm256_mul_pd(va0, _mm256_loadu_pd(x0 + i)));
    vy = _mm256_add_pd(vy, _mm256_mul_pd(va1, _mm256_loadu_pd(x1 + i)));
    vy = _mm256_add_pd(vy, _mm256_mul_pd(va2, _mm256_loadu_pd(x2 + i)));
    vy = _mm256_add_pd(vy, _mm256_mul_pd(va3, _mm256_loadu_pd(x3 + i)));
    _mm256_storeu_pd(y + i, vy);
  }
  for (; i < n; ++i) {
    y[i] = (((y[i] + alpha4[0] * x0[i]) + alpha4[1] * x1[i]) +
            alpha4[2] * x2[i]) +
           alpha4[3] * x3[i];
  }
}

__attribute__((target("avx2"))) inline void AddInPlace(double* y,
                                                       const double* x,
                                                       int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

__attribute__((target("avx2"))) inline void Add(const double* a,
                                                const double* b, double* out,
                                                int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) inline void Sub(const double* a,
                                                const double* b, double* out,
                                                int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

__attribute__((target("avx2"))) inline void Mul(const double* a,
                                                const double* b, double* out,
                                                int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

__attribute__((target("avx2"))) inline void Div(const double* a,
                                                const double* b, double* out,
                                                int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_div_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] / b[i];
}

__attribute__((target("avx2"))) inline void Scale(const double* a, double alpha,
                                                  double* out, int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), va));
  }
  for (; i < n; ++i) out[i] = a[i] * alpha;
}

__attribute__((target("avx2"))) inline void Offset(const double* a,
                                                   double alpha, double* out,
                                                   int64_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i), va));
  }
  for (; i < n; ++i) out[i] = a[i] + alpha;
}

__attribute__((target("avx2"))) inline void Neg(const double* a, double* out,
                                                int64_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_xor_pd(_mm256_loadu_pd(a + i), sign));
  }
  for (; i < n; ++i) out[i] = -a[i];
}

__attribute__((target("avx2"))) inline void Sqrt(const double* a, double* out,
                                                 int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(_mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) out[i] = std::sqrt(a[i]);
}

// int8 dot via the 16-wide madd lane pipeline: widen each int8 half-load
// to int16 (cvtepi8_epi16), multiply-accumulate adjacent pairs into
// int32 lanes (madd_epi16 — exact: |a*b| ≤ 127*127 and the pairwise sum
// fits int32), then fold the eight int32 lanes. Integer addition is
// associative, so any fold order matches the scalar reference bit for
// bit. Accumulating at most 2*127*127 per lane per step bounds the
// int32 accumulator safely for any dim the serve path uses (overflow
// would need n > 2^31 / 16129 ≈ 133k elements per row).
__attribute__((target("avx2"))) inline int32_t DotI8(const int8_t* a,
                                                     const int8_t* b,
                                                     int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int32_t sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

// binary16 dot: F16C widens four binary16 lanes to binary32 exactly,
// cvtps_pd widens to binary64 exactly, then the same 4-lane double
// schedule as Dot. Requires AVX2+F16C; the dispatch wrapper probes F16C
// separately and falls back to the scalar reference otherwise.
__attribute__((target("avx2,f16c"))) inline double DotF16(const uint16_t* a,
                                                          const uint16_t* b,
                                                          int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i ha =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i));
    const __m128i hb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i));
    const __m256d va = _mm256_cvtps_pd(_mm_cvtph_ps(ha));
    const __m256d vb = _mm256_cvtps_pd(_mm_cvtph_ps(hb));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  if (i < n) lanes[0] += HalfToDouble(a[i]) * HalfToDouble(b[i]);
  if (i + 1 < n) lanes[1] += HalfToDouble(a[i + 1]) * HalfToDouble(b[i + 1]);
  if (i + 2 < n) lanes[2] += HalfToDouble(a[i + 2]) * HalfToDouble(b[i + 2]);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace avx2

#endif  // MSOPDS_SIMD_X86

// ---------------------------------------------------------------------------
// NEON backend (AArch64). Two 128-bit registers emulate the 4-lane schedule
// (lanes {0,1} and {2,3}); never vfma.
// ---------------------------------------------------------------------------

#if defined(MSOPDS_SIMD_NEON)

namespace neon {

inline double Dot(const double* a, const double* b, int64_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc23 = vaddq_f64(acc23,
                      vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  double lanes[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                     vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  if (i < n) lanes[0] += a[i] * b[i];
  if (i + 1 < n) lanes[1] += a[i + 1] * b[i + 1];
  if (i + 2 < n) lanes[2] += a[i + 2] * b[i + 2];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

inline double Sum(const double* a, int64_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vld1q_f64(a + i));
    acc23 = vaddq_f64(acc23, vld1q_f64(a + i + 2));
  }
  double lanes[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                     vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  if (i < n) lanes[0] += a[i];
  if (i + 1 < n) lanes[1] += a[i + 1];
  if (i + 2 < n) lanes[2] += a[i + 2];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

inline double MaxAbs(const double* a, int64_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vmaxq_f64(acc01, vabsq_f64(vld1q_f64(a + i)));
    acc23 = vmaxq_f64(acc23, vabsq_f64(vld1q_f64(a + i + 2)));
  }
  double lanes[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                     vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  if (i < n) lanes[0] = std::max(lanes[0], std::fabs(a[i]));
  if (i + 1 < n) lanes[1] = std::max(lanes[1], std::fabs(a[i + 1]));
  if (i + 2 < n) lanes[2] = std::max(lanes[2], std::fabs(a[i + 2]));
  return std::max(std::max(lanes[0], lanes[1]),
                  std::max(lanes[2], lanes[3]));
}

inline void Axpy(double alpha, const double* x, double* y, int64_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i,
              vaddq_f64(vld1q_f64(y + i), vmulq_f64(va, vld1q_f64(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

inline void Axpy4(const double* alpha4, const double* x0, const double* x1,
                  const double* x2, const double* x3, double* y, int64_t n) {
  const float64x2_t va0 = vdupq_n_f64(alpha4[0]);
  const float64x2_t va1 = vdupq_n_f64(alpha4[1]);
  const float64x2_t va2 = vdupq_n_f64(alpha4[2]);
  const float64x2_t va3 = vdupq_n_f64(alpha4[3]);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t vy = vld1q_f64(y + i);
    vy = vaddq_f64(vy, vmulq_f64(va0, vld1q_f64(x0 + i)));
    vy = vaddq_f64(vy, vmulq_f64(va1, vld1q_f64(x1 + i)));
    vy = vaddq_f64(vy, vmulq_f64(va2, vld1q_f64(x2 + i)));
    vy = vaddq_f64(vy, vmulq_f64(va3, vld1q_f64(x3 + i)));
    vst1q_f64(y + i, vy);
  }
  for (; i < n; ++i) {
    y[i] = (((y[i] + alpha4[0] * x0[i]) + alpha4[1] * x1[i]) +
            alpha4[2] * x2[i]) +
           alpha4[3] * x3[i];
  }
}

inline void AddInPlace(double* y, const double* x, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

inline void Add(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

inline void Sub(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

inline void Mul(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

inline void Div(const double* a, const double* b, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vdivq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] / b[i];
}

inline void Scale(const double* a, double alpha, double* out, int64_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), va));
  }
  for (; i < n; ++i) out[i] = a[i] * alpha;
}

inline void Offset(const double* a, double alpha, double* out, int64_t n) {
  const float64x2_t va = vdupq_n_f64(alpha);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(a + i), va));
  }
  for (; i < n; ++i) out[i] = a[i] + alpha;
}

inline void Neg(const double* a, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vnegq_f64(vld1q_f64(a + i)));
  }
  for (; i < n; ++i) out[i] = -a[i];
}

inline void Sqrt(const double* a, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsqrtq_f64(vld1q_f64(a + i)));
  }
  for (; i < n; ++i) out[i] = std::sqrt(a[i]);
}

// int8 dot via the widening-multiply path (baseline AArch64; vdotq
// needs the optional +dotprod feature, and the widening form is exact
// everywhere): vmull_s8 widens 8 products to int16, vpadalq_s16
// pairwise-accumulates into int32 lanes, vaddvq_s32 folds. Integer
// addition is associative, so the bits match the scalar reference.
inline int32_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(va), vget_low_s8(vb)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(va), vget_high_s8(vb)));
  }
  int32_t sum = vaddvq_s32(acc);
  for (; i < n; ++i) {
    sum += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return sum;
}

// binary16 dot: vcvt_f32_f16 widens binary16 to binary32 exactly,
// vcvt_f64_f32 widens to binary64 exactly, then the same 4-lane double
// schedule as Dot (lanes {0,1} and {2,3} in two 128-bit registers).
inline double DotF16(const uint16_t* a, const uint16_t* b, int64_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t fa =
        vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(a + i)));
    const float32x4_t fb =
        vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(b + i)));
    const float64x2_t a01 = vcvt_f64_f32(vget_low_f32(fa));
    const float64x2_t b01 = vcvt_f64_f32(vget_low_f32(fb));
    acc01 = vaddq_f64(acc01, vmulq_f64(a01, b01));
    acc23 = vaddq_f64(acc23,
                      vmulq_f64(vcvt_high_f64_f32(fa), vcvt_high_f64_f32(fb)));
  }
  double lanes[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                     vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
  if (i < n) lanes[0] += HalfToDouble(a[i]) * HalfToDouble(b[i]);
  if (i + 1 < n) lanes[1] += HalfToDouble(a[i + 1]) * HalfToDouble(b[i + 1]);
  if (i + 2 < n) lanes[2] += HalfToDouble(a[i + 2]) * HalfToDouble(b[i + 2]);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace neon

#endif  // MSOPDS_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch wrappers: the API the kernels call.
// ---------------------------------------------------------------------------

#if defined(MSOPDS_SIMD_X86)
#define MSOPDS_SIMD_DISPATCH(fn, ...)                                 \
  do {                                                                \
    if (ActiveBackend() == Backend::kAvx2) return avx2::fn(__VA_ARGS__); \
    return scalar::fn(__VA_ARGS__);                                   \
  } while (0)
#elif defined(MSOPDS_SIMD_NEON)
#define MSOPDS_SIMD_DISPATCH(fn, ...)                                 \
  do {                                                                \
    if (ActiveBackend() == Backend::kNeon) return neon::fn(__VA_ARGS__); \
    return scalar::fn(__VA_ARGS__);                                   \
  } while (0)
#else
#define MSOPDS_SIMD_DISPATCH(fn, ...) return scalar::fn(__VA_ARGS__)
#endif

/// sum_j a[j]*b[j], fixed 4-lane order (see header comment).
inline double Dot(const double* a, const double* b, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Dot, a, b, n);
}

/// sum_j a[j], fixed 4-lane order.
inline double Sum(const double* a, int64_t n) { MSOPDS_SIMD_DISPATCH(Sum, a, n); }

/// max_j |a[j]| (0 for empty spans), fixed 4-lane order.
inline double MaxAbs(const double* a, int64_t n) {
  MSOPDS_SIMD_DISPATCH(MaxAbs, a, n);
}

/// y[j] += alpha * x[j]. Bit-exact across backends.
inline void Axpy(double alpha, const double* x, double* y, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Axpy, alpha, x, y, n);
}

/// Four fused axpy steps against four independent rows:
///   y[j] = (((y[j] + a4[0]*x0[j]) + a4[1]*x1[j]) + a4[2]*x2[j])
///          + a4[3]*x3[j]
/// The per-element association is identical to four sequential Axpy
/// calls (intermediate stores never change IEEE results), so this is
/// bit-exact with the unfused form and across backends. It exists
/// because the fused form touches y once instead of four times — the
/// matmul k-loop is load/store bound on y otherwise. The rows are
/// independent pointers (not a stride) so callers can fuse the next
/// four *contributing* k-steps even when zero-skip makes them
/// non-adjacent.
inline void Axpy4(const double* alpha4, const double* x0, const double* x1,
                  const double* x2, const double* x3, double* y, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Axpy4, alpha4, x0, x1, x2, x3, y, n);
}

/// y[j] += x[j]. Bit-exact across backends.
inline void AddInPlace(double* y, const double* x, int64_t n) {
  MSOPDS_SIMD_DISPATCH(AddInPlace, y, x, n);
}

/// out[j] = a[j] + b[j]. Bit-exact across backends.
inline void Add(const double* a, const double* b, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Add, a, b, out, n);
}

/// out[j] = a[j] - b[j]. Bit-exact across backends.
inline void Sub(const double* a, const double* b, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Sub, a, b, out, n);
}

/// out[j] = a[j] * b[j]. Bit-exact across backends.
inline void Mul(const double* a, const double* b, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Mul, a, b, out, n);
}

/// out[j] = a[j] / b[j]. Bit-exact across backends.
inline void Div(const double* a, const double* b, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Div, a, b, out, n);
}

/// out[j] = a[j] * alpha. Bit-exact across backends.
inline void Scale(const double* a, double alpha, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Scale, a, alpha, out, n);
}

/// out[j] = a[j] + alpha. Bit-exact across backends.
inline void Offset(const double* a, double alpha, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Offset, a, alpha, out, n);
}

/// out[j] = -a[j]. Bit-exact across backends.
inline void Neg(const double* a, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Neg, a, out, n);
}

/// out[j] = sqrt(a[j]). IEEE sqrt is exact, so bit-exact across backends.
inline void Sqrt(const double* a, double* out, int64_t n) {
  MSOPDS_SIMD_DISPATCH(Sqrt, a, out, n);
}

/// sum_j (int32)a[j] * (int32)b[j] over int8 rows. Pure integer
/// arithmetic: bit-exact across backends, threads, and the MSOPDS_SIMD
/// switch by construction. Callers must keep n below ~133k elements so
/// the int32 accumulator cannot wrap (serve rows are ≤ a few hundred).
inline int32_t DotI8(const int8_t* a, const int8_t* b, int64_t n) {
  MSOPDS_SIMD_DISPATCH(DotI8, a, b, n);
}

/// sum_j widen(a[j]) * widen(b[j]) over IEEE binary16 rows, fixed 4-lane
/// double schedule (see header comment). Widening is exact in every
/// backend, so this shares Dot's bit-exact-across-backends contract.
/// On x86 the vector path additionally requires F16C; without it the
/// scalar reference runs even when AVX2 is active.
inline double DotF16(const uint16_t* a, const uint16_t* b, int64_t n) {
#if defined(MSOPDS_SIMD_X86)
  if (ActiveBackend() == Backend::kAvx2 && internal::F16cSupported()) {
    return avx2::DotF16(a, b, n);
  }
  return scalar::DotF16(a, b, n);
#else
  MSOPDS_SIMD_DISPATCH(DotF16, a, b, n);
#endif
}

#undef MSOPDS_SIMD_DISPATCH

}  // namespace simd
}  // namespace msopds

#endif  // MSOPDS_TENSOR_SIMD_H_
