#ifndef MSOPDS_TENSOR_GRADCHECK_H_
#define MSOPDS_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/grad.h"
#include "tensor/variable.h"

namespace msopds {

/// A scalar-valued differentiable function of several tensors. The callable
/// must build its result from recorded ops over the given Variables.
using ScalarFn = std::function<Variable(const std::vector<Variable>&)>;

/// Compares analytic gradients of `fn` at `points` against central finite
/// differences. Returns the maximum absolute elementwise error.
double MaxGradError(const ScalarFn& fn, const std::vector<Tensor>& points,
                    double epsilon = 1e-5);

/// Compares the exact (double-backward) Hessian-vector product of `fn`
/// w.r.t. points[arg] in direction `v` against a central finite difference
/// of analytic gradients. Returns the maximum absolute elementwise error.
double MaxHvpError(const ScalarFn& fn, const std::vector<Tensor>& points,
                   size_t arg, const Tensor& v, double epsilon = 1e-5);

}  // namespace msopds

#endif  // MSOPDS_TENSOR_GRADCHECK_H_
