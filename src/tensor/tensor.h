#ifndef MSOPDS_TENSOR_TENSOR_H_
#define MSOPDS_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/storage.h"
#include "util/logging.h"

namespace msopds {

/// Reduction chunk grain for Tensor::Sum / Tensor::Max: tensors at or
/// below this size form a one-chunk grid and take the exact pre-pool
/// serial code path. Exposed so the write-overlap verifier (ops.cc's
/// Sum plan) rebuilds the same partial-slot grid the kernel runs.
inline constexpr int64_t kReduceGrain = 32768;

/// Flat element view of a tensor buffer used inside kernels: indexing is
/// bounds-checked in Debug builds (MSOPDS_DCHECK) and compiles down to a
/// raw pointer access in Release, unlike Tensor::at() which pays rank and
/// bounds CHECKs on every element. Views never own or extend the buffer's
/// lifetime — take them right before the loop that uses them.
class ConstTensorSpan {
 public:
  ConstTensorSpan(const double* data, int64_t size)
      : data_(data), size_(size) {}

  double operator[](int64_t i) const {
    MSOPDS_DCHECK_GE(i, 0);
    MSOPDS_DCHECK_LT(i, size_);
    return data_[i];
  }

  const double* begin() const { return data_; }
  int64_t size() const { return size_; }

 private:
  const double* data_;
  int64_t size_;
};

class TensorSpan {
 public:
  TensorSpan(double* data, int64_t size) : data_(data), size_(size) {}

  double& operator[](int64_t i) const {
    MSOPDS_DCHECK_GE(i, 0);
    MSOPDS_DCHECK_LT(i, size_);
    return data_[i];
  }

  double* begin() const { return data_; }
  int64_t size() const { return size_; }

 private:
  double* data_;
  int64_t size_;
};

/// Dense row-major tensor of doubles with rank 0, 1, or 2.
///
/// Copying a Tensor shares the underlying buffer (like torch tensors);
/// use Clone() for a deep copy. All differentiable computation happens on
/// Variable (tensor/variable.h); Tensor is the raw storage + eager math
/// used inside op kernels.
class Tensor {
 public:
  /// An empty (undefined) tensor; size() == 0 and rank() == 0.
  Tensor();

  /// Allocates a zero-initialized tensor of the given shape (rank <= 2).
  explicit Tensor(std::vector<int64_t> shape);

  /// Scalar (rank-0) tensor holding `value`.
  static Tensor Scalar(double value);

  /// Rank-1 tensor from values.
  static Tensor FromVector(std::vector<double> values);

  /// Rank-2 tensor from row-major values; values.size() must be rows*cols.
  static Tensor FromMatrix(int64_t rows, int64_t cols,
                           std::vector<double> values);

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, double value);

  /// Deep copy.
  Tensor Clone() const;

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int64_t axis) const;
  int64_t size() const { return size_; }
  bool defined() const { return data_ != nullptr; }

  double* data();
  const double* data() const;

  /// Unchecked (Debug-checked) element views for kernel hot loops; see
  /// ConstTensorSpan. Requires defined().
  ConstTensorSpan span() const { return {data(), size_}; }
  TensorSpan mutable_span() { return {data(), size_}; }

  /// Scalar access; requires size() == 1 (any rank).
  double item() const;

  /// Rank-1 element access.
  double& at(int64_t i);
  double at(int64_t i) const;

  /// Rank-2 element access.
  double& at(int64_t i, int64_t j);
  double at(int64_t i, int64_t j) const;

  /// True if both shapes are identical.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Monotonic version stamp of the underlying buffer, shared by every
  /// Tensor aliasing it. Ops snapshot their inputs' generations when they
  /// are recorded; the graph verifier compares the snapshots against the
  /// current values to flag tensors mutated after being captured by a
  /// graph (the "stale leaf" hazard). 0 for undefined tensors.
  uint64_t generation() const { return data_ ? data_->generation() : 0; }

  /// Marks the buffer as mutated. Called by Variable::mutable_value();
  /// call it directly after writing through data() to a tensor that a
  /// recorded graph may alias.
  void BumpGeneration() {
    if (data_) data_->BumpGeneration();
  }

  /// Buffer identity: equal for tensors aliasing the same storage, and
  /// stable for the storage's lifetime. nullptr for undefined tensors.
  /// Used by GraphStats to deduplicate shared buffers when accounting
  /// live bytes.
  const void* buffer_id() const { return data_.get(); }

  /// True when this handle is the only reference to the buffer. Grad()'s
  /// value mode accumulates in place only when this holds — mutating a
  /// shared buffer would corrupt aliases, so it clones first otherwise.
  bool sole_buffer_owner() const {
    return data_ != nullptr && data_.use_count() == 1;
  }

  /// Sets every element to `value`.
  void Fill(double value);

  /// Sum of all elements.
  double Sum() const;

  /// Maximum absolute element (0 for empty tensors).
  double MaxAbs() const;

  /// Debug rendering, e.g. "[2,3]{1, 2, 3, ...}".
  std::string DebugString(int64_t max_elements = 8) const;

 private:
  std::vector<int64_t> shape_;
  int64_t size_ = 0;
  /// Arena-backed, ref-counted buffer; carries the generation stamp.
  std::shared_ptr<TensorStorage> data_;
};

/// True if `a` and `b` have equal shape and elements within `tolerance`.
bool AllClose(const Tensor& a, const Tensor& b, double tolerance = 1e-9);

}  // namespace msopds

#endif  // MSOPDS_TENSOR_TENSOR_H_
