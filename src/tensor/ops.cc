#include "tensor/ops.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "tensor/verify.h"
#include "util/logging.h"
#include "util/status.h"

namespace msopds {
namespace {

bool IsScalarLike(const Tensor& t) { return t.size() == 1; }

// Creates a recorded op node. `backward` may be empty when no input
// requires grad (the node then acts as a constant).
Variable MakeOp(const char* name, Tensor value, std::vector<Variable> inputs,
                internal::Node::BackwardFn backward) {
  bool requires_grad = false;
  for (const Variable& v : inputs) {
    MSOPDS_CHECK(v.defined()) << "undefined input to op " << name;
    requires_grad = requires_grad || v.requires_grad();
  }
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op_name = name;
  if (requires_grad) {
    internal::AttachInputs(node.get(), std::move(inputs));
    node->backward = std::move(backward);
  }
  return Variable::FromNode(std::move(node));
}

// Reduces a gradient to match the (possibly scalar-broadcast) input,
// including the exact rank of size-1 tensors ([] vs [1]).
Variable ReduceLike(const Variable& grad, const Variable& input) {
  Variable reduced = grad;
  if (IsScalarLike(input.value()) && grad.value().size() > 1) {
    reduced = Sum(grad);
  }
  if (!reduced.value().SameShape(input.value())) {
    reduced = Reshape(reduced, input.value().shape());
  }
  return reduced;
}

enum class BinaryKind { kAdd, kSub, kMul, kDiv };

Tensor EvalBinary(BinaryKind kind, const Tensor& a, const Tensor& b) {
  const bool a_scalar = IsScalarLike(a);
  const bool b_scalar = IsScalarLike(b);
  MSOPDS_CHECK(a.SameShape(b) || a_scalar || b_scalar)
      << "shape mismatch: " << a.DebugString(2) << " vs " << b.DebugString(2);
  // Output takes the non-scalar operand's shape; when both are size-1 the
  // higher-rank shape wins so [1] op [] keeps shape [1].
  const Tensor& shaped = !a_scalar ? a
                         : !b_scalar ? b
                         : (a.rank() >= b.rank() ? a : b);
  Tensor out(shaped.shape());
  const int64_t n = out.size();
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const double x = a_scalar ? pa[0] : pa[i];
    const double y = b_scalar ? pb[0] : pb[i];
    switch (kind) {
      case BinaryKind::kAdd:
        po[i] = x + y;
        break;
      case BinaryKind::kSub:
        po[i] = x - y;
        break;
      case BinaryKind::kMul:
        po[i] = x * y;
        break;
      case BinaryKind::kDiv:
        po[i] = x / y;
        break;
    }
  }
  return out;
}

}  // namespace

IndexVec MakeIndex(std::vector<int64_t> indices) {
  return std::make_shared<const std::vector<int64_t>>(std::move(indices));
}

Variable Add(const Variable& a, const Variable& b) {
  return MakeOp("Add", EvalBinary(BinaryKind::kAdd, a.value(), b.value()),
                {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{ReduceLike(g, in[0]),
                                               ReduceLike(g, in[1])};
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOp("Sub", EvalBinary(BinaryKind::kSub, a.value(), b.value()),
                {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{ReduceLike(g, in[0]),
                                               ReduceLike(Neg(g), in[1])};
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOp("Mul", EvalBinary(BinaryKind::kMul, a.value(), b.value()),
                {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      ReduceLike(Mul(g, in[1]), in[0]),
                      ReduceLike(Mul(g, in[0]), in[1])};
                });
}

Variable Div(const Variable& a, const Variable& b) {
  return MakeOp(
      "Div", EvalBinary(BinaryKind::kDiv, a.value(), b.value()), {a, b},
      [](const Variable& g, const std::vector<Variable>& in) {
        Variable ga = ReduceLike(Div(g, in[1]), in[0]);
        Variable gb = ReduceLike(
            Neg(Mul(g, Div(in[0], Mul(in[1], in[1])))), in[1]);
        return std::vector<Variable>{std::move(ga), std::move(gb)};
      });
}

Variable Neg(const Variable& a) {
  Tensor out = a.value().Clone();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = -out.data()[i];
  return MakeOp("Neg", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Neg(g)};
                });
}

Variable ScalarMul(const Variable& a, double c) {
  Tensor out = a.value().Clone();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] *= c;
  return MakeOp("ScalarMul", std::move(out), {a},
                [c](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{ScalarMul(g, c)};
                });
}

Variable AddScalar(const Variable& a, double c) {
  Tensor out = a.value().Clone();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] += c;
  return MakeOp("AddScalar", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{g};
                });
}

Variable Exp(const Variable& a) {
  Tensor out = a.value().Clone();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = std::exp(out.data()[i]);
  return MakeOp("Exp", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  // Recomputed so the gradient graph depends only on inputs.
                  return std::vector<Variable>{Mul(g, Exp(in[0]))};
                });
}

Variable Log(const Variable& a) {
  Tensor out = a.value().Clone();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = std::log(out.data()[i]);
  return MakeOp("Log", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{Div(g, in[0])};
                });
}

Variable Sqrt(const Variable& a) {
  Tensor out = a.value().Clone();
  for (int64_t i = 0; i < out.size(); ++i)
    out.data()[i] = std::sqrt(out.data()[i]);
  return MakeOp("Sqrt", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      Div(g, ScalarMul(Sqrt(in[0]), 2.0))};
                });
}

Variable Square(const Variable& a) { return Mul(a, a); }

Variable Reshape(const Variable& a, std::vector<int64_t> shape) {
  Tensor out(shape);
  MSOPDS_CHECK_EQ(out.size(), a.value().size()) << "Reshape must keep size";
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] = a.value().data()[i];
  const std::vector<int64_t> original = a.value().shape();
  return MakeOp("Reshape", std::move(out), {a},
                [original](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Reshape(g, original)};
                });
}

Variable Where(const Tensor& mask, const Variable& a, const Variable& b) {
  MSOPDS_CHECK(mask.SameShape(a.value()));
  MSOPDS_CHECK(mask.SameShape(b.value()));
  Tensor out(a.value().shape());
  for (int64_t i = 0; i < out.size(); ++i) {
    out.data()[i] =
        mask.data()[i] != 0.0 ? a.value().data()[i] : b.value().data()[i];
  }
  Tensor mask_copy = mask.Clone();
  return MakeOp(
      "Where", std::move(out), {a, b},
      [mask_copy](const Variable& g, const std::vector<Variable>&) {
        Tensor inv = mask_copy.Clone();
        for (int64_t i = 0; i < inv.size(); ++i)
          inv.data()[i] = inv.data()[i] != 0.0 ? 0.0 : 1.0;
        return std::vector<Variable>{Mul(g, Constant(mask_copy)),
                                     Mul(g, Constant(inv))};
      });
}

Tensor GreaterZeroMask(const Tensor& x) {
  Tensor mask(x.shape());
  for (int64_t i = 0; i < x.size(); ++i)
    mask.data()[i] = x.data()[i] > 0.0 ? 1.0 : 0.0;
  return mask;
}

Variable MatMul(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(1), tb.dim(0));
  const int64_t n = ta.dim(0), k = ta.dim(1), m = tb.dim(1);
  Tensor out({n, m});
  const double* pa = ta.data();
  const double* pb = tb.data();
  double* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const double aik = pa[i * k + kk];
      if (aik == 0.0) continue;
      const double* brow = pb + kk * m;
      double* orow = po + i * m;
      for (int64_t j = 0; j < m; ++j) orow[j] += aik * brow[j];
    }
  }
  return MakeOp("MatMul", std::move(out), {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      MatMul(g, Transpose(in[1])),
                      MatMul(Transpose(in[0]), g)};
                });
}

Variable Transpose(const Variable& a) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  const int64_t n = t.dim(0), m = t.dim(1);
  Tensor out({m, n});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < m; ++j) out.at(j, i) = t.at(i, j);
  return MakeOp("Transpose", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Transpose(g)};
                });
}

Variable Sum(const Variable& a) {
  return MakeOp("Sum", Tensor::Scalar(a.value().Sum()), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      Mul(Constant(Tensor::Ones(in[0].value().shape())), g)};
                });
}

Variable Mean(const Variable& a) {
  const int64_t n = a.value().size();
  MSOPDS_CHECK_GT(n, 0);
  return ScalarMul(Sum(a), 1.0 / static_cast<double>(n));
}

Variable RowSum(const Variable& a) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  const int64_t n = t.dim(0), m = t.dim(1);
  Tensor out({n});
  for (int64_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < m; ++j) s += t.at(i, j);
    out.at(i) = s;
  }
  return MakeOp("RowSum", std::move(out), {a},
                [m](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{TileCols(g, m)};
                });
}

Variable TileCols(const Variable& v, int64_t cols) {
  const Tensor& t = v.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_GT(cols, 0);
  const int64_t n = t.dim(0);
  Tensor out({n, cols});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < cols; ++j) out.at(i, j) = t.at(i);
  return MakeOp("TileCols", std::move(out), {v},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{RowSum(g)};
                });
}

namespace {

// Inserts a [N, width] block into a zero [N, total] matrix at column lo.
// Adjoint of SliceCols; internal because users only need the pair.
Variable PadCols(const Variable& a, int64_t lo, int64_t total);

}  // namespace

Variable ConcatCols(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(0), tb.dim(0));
  const int64_t n = ta.dim(0), ca = ta.dim(1), cb = tb.dim(1);
  Tensor out({n, ca + cb});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < ca; ++j) out.at(i, j) = ta.at(i, j);
    for (int64_t j = 0; j < cb; ++j) out.at(i, ca + j) = tb.at(i, j);
  }
  return MakeOp("ConcatCols", std::move(out), {a, b},
                [ca, cb](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{SliceCols(g, 0, ca),
                                               SliceCols(g, ca, ca + cb)};
                });
}

Variable SliceCols(const Variable& a, int64_t lo, int64_t hi) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  MSOPDS_CHECK_GE(lo, 0);
  MSOPDS_CHECK_LE(lo, hi);
  MSOPDS_CHECK_LE(hi, t.dim(1));
  const int64_t n = t.dim(0), total = t.dim(1);
  Tensor out({n, hi - lo});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = lo; j < hi; ++j) out.at(i, j - lo) = t.at(i, j);
  return MakeOp("SliceCols", std::move(out), {a},
                [lo, total](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{PadCols(g, lo, total)};
                });
}

namespace {

Variable PadCols(const Variable& a, int64_t lo, int64_t total) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  MSOPDS_CHECK_LE(lo + t.dim(1), total);
  const int64_t n = t.dim(0), w = t.dim(1);
  Tensor out({n, total});
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < w; ++j) out.at(i, lo + j) = t.at(i, j);
  return MakeOp("PadCols", std::move(out), {a},
                [lo, w](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{SliceCols(g, lo, lo + w)};
                });
}

// Inserts a vector block into a zero [total] vector at offset lo.
Variable Pad1(const Variable& a, int64_t lo, int64_t total) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_LE(lo + t.dim(0), total);
  const int64_t w = t.dim(0);
  Tensor out({total});
  for (int64_t i = 0; i < w; ++i) out.at(lo + i) = t.at(i);
  return MakeOp("Pad1", std::move(out), {a},
                [lo, w](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Slice1(g, lo, lo + w)};
                });
}

}  // namespace

Variable Concat1(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 1);
  MSOPDS_CHECK_EQ(tb.rank(), 1);
  const int64_t na = ta.dim(0), nb = tb.dim(0);
  Tensor out({na + nb});
  for (int64_t i = 0; i < na; ++i) out.at(i) = ta.at(i);
  for (int64_t i = 0; i < nb; ++i) out.at(na + i) = tb.at(i);
  return MakeOp("Concat1", std::move(out), {a, b},
                [na, nb](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Slice1(g, 0, na),
                                               Slice1(g, na, na + nb)};
                });
}

Variable Slice1(const Variable& a, int64_t lo, int64_t hi) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_GE(lo, 0);
  MSOPDS_CHECK_LE(lo, hi);
  MSOPDS_CHECK_LE(hi, t.dim(0));
  const int64_t total = t.dim(0);
  Tensor out({hi - lo});
  for (int64_t i = lo; i < hi; ++i) out.at(i - lo) = t.at(i);
  return MakeOp("Slice1", std::move(out), {a},
                [lo, total](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Pad1(g, lo, total)};
                });
}

Variable GatherRows(const Variable& x, const IndexVec& idx) {
  const Tensor& t = x.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  const int64_t n = t.dim(0), d = t.dim(1);
  const int64_t k = static_cast<int64_t>(idx->size());
  Tensor out({k, d});
  for (int64_t i = 0; i < k; ++i) {
    const int64_t r = (*idx)[static_cast<size_t>(i)];
    MSOPDS_CHECK_GE(r, 0);
    MSOPDS_CHECK_LT(r, n);
    for (int64_t j = 0; j < d; ++j) out.at(i, j) = t.at(r, j);
  }
  return MakeOp("GatherRows", std::move(out), {x},
                [idx, n](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{ScatterAddRows(g, idx, n)};
                });
}

Variable ScatterAddRows(const Variable& g, const IndexVec& idx, int64_t rows) {
  const Tensor& t = g.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  MSOPDS_CHECK_EQ(t.dim(0), static_cast<int64_t>(idx->size()));
  const int64_t k = t.dim(0), d = t.dim(1);
  Tensor out({rows, d});
  for (int64_t i = 0; i < k; ++i) {
    const int64_t r = (*idx)[static_cast<size_t>(i)];
    MSOPDS_CHECK_GE(r, 0);
    MSOPDS_CHECK_LT(r, rows);
    for (int64_t j = 0; j < d; ++j) out.at(r, j) += t.at(i, j);
  }
  return MakeOp("ScatterAddRows", std::move(out), {g},
                [idx](const Variable& gg, const std::vector<Variable>&) {
                  return std::vector<Variable>{GatherRows(gg, idx)};
                });
}

Variable Gather1(const Variable& x, const IndexVec& idx) {
  const Tensor& t = x.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  const int64_t n = t.dim(0);
  const int64_t k = static_cast<int64_t>(idx->size());
  Tensor out({k});
  for (int64_t i = 0; i < k; ++i) {
    const int64_t r = (*idx)[static_cast<size_t>(i)];
    MSOPDS_CHECK_GE(r, 0);
    MSOPDS_CHECK_LT(r, n);
    out.at(i) = t.at(r);
  }
  return MakeOp("Gather1", std::move(out), {x},
                [idx, n](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{ScatterAdd1(g, idx, n)};
                });
}

Variable ScatterAdd1(const Variable& g, const IndexVec& idx, int64_t size) {
  const Tensor& t = g.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_EQ(t.dim(0), static_cast<int64_t>(idx->size()));
  Tensor out({size});
  for (int64_t i = 0; i < t.dim(0); ++i) {
    const int64_t r = (*idx)[static_cast<size_t>(i)];
    MSOPDS_CHECK_GE(r, 0);
    MSOPDS_CHECK_LT(r, size);
    out.at(r) += t.at(i);
  }
  return MakeOp("ScatterAdd1", std::move(out), {g},
                [idx](const Variable& gg, const std::vector<Variable>&) {
                  return std::vector<Variable>{Gather1(gg, idx)};
                });
}

Variable SpMM(const IndexVec& dst, const IndexVec& src, const Variable& w,
              const Variable& x, int64_t num_dst) {
  const Tensor& tw = w.value();
  const Tensor& tx = x.value();
  MSOPDS_CHECK_EQ(tw.rank(), 1);
  MSOPDS_CHECK_EQ(tx.rank(), 2);
  const int64_t e = tw.dim(0);
  MSOPDS_CHECK_EQ(e, static_cast<int64_t>(dst->size()));
  MSOPDS_CHECK_EQ(e, static_cast<int64_t>(src->size()));
  const int64_t num_src = tx.dim(0), d = tx.dim(1);
  Tensor out({num_dst, d});
  for (int64_t k = 0; k < e; ++k) {
    const int64_t di = (*dst)[static_cast<size_t>(k)];
    const int64_t si = (*src)[static_cast<size_t>(k)];
    MSOPDS_CHECK_GE(di, 0);
    MSOPDS_CHECK_LT(di, num_dst);
    MSOPDS_CHECK_GE(si, 0);
    MSOPDS_CHECK_LT(si, num_src);
    const double wk = tw.at(k);
    if (wk == 0.0) continue;
    const double* xrow = tx.data() + si * d;
    double* orow = out.data() + di * d;
    for (int64_t j = 0; j < d; ++j) orow[j] += wk * xrow[j];
  }
  return MakeOp(
      "SpMM", std::move(out), {w, x},
      [dst, src, num_src](const Variable& g, const std::vector<Variable>& in) {
        Variable gw = EdgeDot(g, in[1], dst, src);
        Variable gx = SpMM(src, dst, in[0], g, num_src);
        return std::vector<Variable>{std::move(gw), std::move(gx)};
      });
}

Variable EdgeDot(const Variable& a, const Variable& b, const IndexVec& ai,
                 const IndexVec& bi) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(1), tb.dim(1));
  MSOPDS_CHECK_EQ(ai->size(), bi->size());
  const int64_t e = static_cast<int64_t>(ai->size());
  const int64_t na = ta.dim(0), nb = tb.dim(0), d = ta.dim(1);
  Tensor out({e});
  for (int64_t k = 0; k < e; ++k) {
    const int64_t ia = (*ai)[static_cast<size_t>(k)];
    const int64_t ib = (*bi)[static_cast<size_t>(k)];
    MSOPDS_CHECK_GE(ia, 0);
    MSOPDS_CHECK_LT(ia, na);
    MSOPDS_CHECK_GE(ib, 0);
    MSOPDS_CHECK_LT(ib, nb);
    const double* ra = ta.data() + ia * d;
    const double* rb = tb.data() + ib * d;
    double s = 0.0;
    for (int64_t j = 0; j < d; ++j) s += ra[j] * rb[j];
    out.at(k) = s;
  }
  return MakeOp(
      "EdgeDot", std::move(out), {a, b},
      [ai, bi, na, nb](const Variable& g, const std::vector<Variable>& in) {
        Variable ga = SpMM(ai, bi, g, in[1], na);
        Variable gb = SpMM(bi, ai, g, in[0], nb);
        return std::vector<Variable>{std::move(ga), std::move(gb)};
      });
}

Variable Relu(const Variable& x) {
  const Tensor mask = GreaterZeroMask(x.value());
  return Where(mask, x, Constant(Tensor::Zeros(x.value().shape())));
}

Variable Selu(const Variable& x) {
  // Constants from Klambauer et al. (2017).
  constexpr double kScale = 1.0507009873554805;
  constexpr double kAlpha = 1.6732632423543772;
  const Tensor mask = GreaterZeroMask(x.value());
  Variable negative = ScalarMul(AddScalar(Exp(x), -1.0), kAlpha);
  return ScalarMul(Where(mask, x, negative), kScale);
}

Variable Sigmoid(const Variable& x) {
  Variable one = Constant(Tensor::Ones(x.value().shape()));
  return Div(one, AddScalar(Exp(Neg(x)), 1.0));
}

Variable PairDot(const Variable& a, const Variable& b) {
  return RowSum(Mul(a, b));
}

Variable Dot(const Variable& a, const Variable& b) { return Sum(Mul(a, b)); }

Variable SegmentSoftmax(const Variable& scores, const IndexVec& seg,
                        int64_t num_segments) {
  const Tensor& t = scores.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  const int64_t e = t.dim(0);
  MSOPDS_CHECK_EQ(e, static_cast<int64_t>(seg->size()));
  // Per-segment max as a constant shift for numerical stability.
  std::vector<double> seg_max(static_cast<size_t>(num_segments), -1e300);
  for (int64_t k = 0; k < e; ++k) {
    const int64_t s = (*seg)[static_cast<size_t>(k)];
    MSOPDS_CHECK_GE(s, 0);
    MSOPDS_CHECK_LT(s, num_segments);
    seg_max[static_cast<size_t>(s)] =
        std::max(seg_max[static_cast<size_t>(s)], t.at(k));
  }
  Tensor shift({e});
  for (int64_t k = 0; k < e; ++k)
    shift.at(k) = seg_max[static_cast<size_t>((*seg)[static_cast<size_t>(k)])];
  Variable exps = Exp(Sub(scores, Constant(shift)));
  Variable denom = ScatterAdd1(exps, seg, num_segments);
  return Div(exps, Gather1(denom, seg));
}

Variable SquaredNorm(const Variable& x) { return Sum(Mul(x, x)); }

// ---------------------------------------------------------------------------
// Shape-inference registry. One OpSpec per primitive recorded above; the
// GraphVerifier replays these checks over recorded graphs, and the
// gradcheck examples let tools/verify_graph sweep every op with first- and
// second-order finite-difference checks.
// ---------------------------------------------------------------------------

namespace {

std::string ShapeOf(const Tensor& t) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < t.shape().size(); ++i) {
    if (i > 0) out << ",";
    out << t.shape()[i];
  }
  out << "]";
  return out.str();
}

Status ShapeError(const char* what, const std::vector<const Tensor*>& inputs,
                  const Tensor& output) {
  std::ostringstream msg;
  msg << what << "; inputs";
  for (const Tensor* in : inputs) msg << " " << ShapeOf(*in);
  msg << " -> output " << ShapeOf(output);
  return Status::InvalidArgument(msg.str());
}

Status ExpectRank(const Tensor& t, int64_t rank, const char* what) {
  if (t.rank() != rank) {
    std::ostringstream msg;
    msg << what << " must have rank " << rank << ", got " << ShapeOf(t);
    return Status::InvalidArgument(msg.str());
  }
  return Status::Ok();
}

// Output shape of the scalar-broadcast elementwise rule (EvalBinary).
Status InferBinary(const std::vector<const Tensor*>& inputs,
                   const Tensor& output) {
  const Tensor& a = *inputs[0];
  const Tensor& b = *inputs[1];
  const bool a_scalar = IsScalarLike(a);
  const bool b_scalar = IsScalarLike(b);
  if (!(a.SameShape(b) || a_scalar || b_scalar)) {
    return ShapeError("operands neither same-shape nor scalar", inputs,
                      output);
  }
  const Tensor& shaped = !a_scalar ? a
                         : !b_scalar ? b
                         : (a.rank() >= b.rank() ? a : b);
  if (!output.SameShape(shaped)) {
    return ShapeError("output shape must match the non-scalar operand",
                      inputs, output);
  }
  return Status::Ok();
}

Status InferUnarySameShape(const std::vector<const Tensor*>& inputs,
                           const Tensor& output) {
  if (!output.SameShape(*inputs[0])) {
    return ShapeError("elementwise output must match input shape", inputs,
                      output);
  }
  return Status::Ok();
}

// Deterministic example operands (values chosen away from the kinks and
// poles of Log/Sqrt/Div).
Tensor ExA23() {
  return Tensor::FromMatrix(2, 3, {0.5, -1.2, 0.3, 1.1, 0.7, -0.4});
}
Tensor ExB23() {
  return Tensor::FromMatrix(2, 3, {0.9, 0.4, -0.8, 0.2, -1.5, 0.6});
}
Tensor ExPos23() {
  return Tensor::FromMatrix(2, 3, {0.7, 1.3, 0.5, 2.1, 0.9, 1.6});
}
Tensor ExV4() { return Tensor::FromVector({0.8, -0.3, 1.2, 0.4}); }
Tensor ExW4() { return Tensor::FromVector({-0.6, 1.1, 0.2, 0.9}); }
Tensor ExM32() {
  return Tensor::FromMatrix(3, 2, {0.3, -0.9, 1.4, 0.2, -0.5, 0.8});
}

// Scalar reduction with a nonzero Hessian so HVP checks are nontrivial.
Variable SumSq(const Variable& x) { return Sum(Mul(x, x)); }

GradcheckCase Case1(const char* description,
                    std::function<Variable(const Variable&)> build,
                    Tensor point) {
  GradcheckCase c;
  c.description = description;
  c.points = {std::move(point)};
  c.fn = [build = std::move(build)](const std::vector<Variable>& p) {
    return build(p[0]);
  };
  return c;
}

GradcheckCase Case2(const char* description,
                    std::function<Variable(const Variable&, const Variable&)>
                        build,
                    Tensor point0, Tensor point1, size_t hvp_arg = 0) {
  GradcheckCase c;
  c.description = description;
  c.points = {std::move(point0), std::move(point1)};
  c.hvp_arg = hvp_arg;
  c.fn = [build = std::move(build)](const std::vector<Variable>& p) {
    return build(p[0], p[1]);
  };
  return c;
}

std::vector<OpSpec> BuildOpRegistry() {
  std::vector<OpSpec> registry;
  auto add = [&registry](const char* name, int arity,
                         std::function<Status(
                             const std::vector<const Tensor*>&, const Tensor&)>
                             infer,
                         std::function<GradcheckCase()> example) {
    OpSpec spec;
    spec.name = name;
    spec.arity = arity;
    spec.infer = std::move(infer);
    spec.example = std::move(example);
    registry.push_back(std::move(spec));
  };

  add("Add", 2, InferBinary, [] {
    return Case2("SumSq(Add(a, b))",
                 [](const Variable& a, const Variable& b) {
                   return SumSq(Add(a, b));
                 },
                 ExA23(), ExB23());
  });
  add("Sub", 2, InferBinary, [] {
    return Case2("SumSq(Sub(a, b))",
                 [](const Variable& a, const Variable& b) {
                   return SumSq(Sub(a, b));
                 },
                 ExA23(), ExB23(), /*hvp_arg=*/1);
  });
  add("Mul", 2, InferBinary, [] {
    return Case2("Sum(Mul(Mul(a, b), a))",
                 [](const Variable& a, const Variable& b) {
                   return Sum(Mul(Mul(a, b), a));
                 },
                 ExA23(), ExB23());
  });
  add("Div", 2, InferBinary, [] {
    return Case2("SumSq(Div(a, b))",
                 [](const Variable& a, const Variable& b) {
                   return SumSq(Div(a, b));
                 },
                 ExA23(), ExPos23(), /*hvp_arg=*/1);
  });
  add("Neg", 1, InferUnarySameShape, [] {
    return Case1("Sum(Mul(Neg(a), Exp(a)))",
                 [](const Variable& a) { return Sum(Mul(Neg(a), Exp(a))); },
                 ExA23());
  });
  add("ScalarMul", 1, InferUnarySameShape, [] {
    return Case1("SumSq(ScalarMul(a, 1.7))",
                 [](const Variable& a) { return SumSq(ScalarMul(a, 1.7)); },
                 ExA23());
  });
  add("AddScalar", 1, InferUnarySameShape, [] {
    return Case1("SumSq(AddScalar(a, 0.9))",
                 [](const Variable& a) { return SumSq(AddScalar(a, 0.9)); },
                 ExA23());
  });
  add("Exp", 1, InferUnarySameShape, [] {
    return Case1("Sum(Exp(a))",
                 [](const Variable& a) { return Sum(Exp(a)); }, ExA23());
  });
  add("Log", 1, InferUnarySameShape, [] {
    return Case1("Sum(Log(a))",
                 [](const Variable& a) { return Sum(Log(a)); }, ExPos23());
  });
  add("Sqrt", 1, InferUnarySameShape, [] {
    return Case1("Sum(Sqrt(a))",
                 [](const Variable& a) { return Sum(Sqrt(a)); }, ExPos23());
  });
  add("Reshape", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        if (output.size() != inputs[0]->size()) {
          return ShapeError("Reshape must preserve element count", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(Reshape(a, {3,2}))",
                     [](const Variable& a) {
                       return SumSq(Reshape(a, {3, 2}));
                     },
                     ExA23());
      });
  add("Where", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        if (!inputs[0]->SameShape(*inputs[1]) ||
            !output.SameShape(*inputs[0])) {
          return ShapeError("Where branches and output must share one shape",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(Where(mask, a, b))",
                     [](const Variable& a, const Variable& b) {
                       const Tensor mask = Tensor::FromMatrix(
                           2, 3, {1.0, 0.0, 1.0, 0.0, 1.0, 0.0});
                       return SumSq(Where(mask, a, b));
                     },
                     ExA23(), ExB23(), /*hvp_arg=*/1);
      });
  add("MatMul", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "MatMul lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "MatMul rhs"));
        if (a.dim(1) != b.dim(0) || output.rank() != 2 ||
            output.dim(0) != a.dim(0) || output.dim(1) != b.dim(1)) {
          return ShapeError("MatMul shapes must chain [n,k]x[k,m]->[n,m]",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(MatMul(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(MatMul(a, b));
                     },
                     ExA23(), ExM32());
      });
  add("Transpose", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "Transpose input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(1) ||
            output.dim(1) != a.dim(0)) {
          return ShapeError("Transpose must swap dims", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(Transpose(a))",
                     [](const Variable& a) { return SumSq(Transpose(a)); },
                     ExA23());
      });
  add("Sum", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        if (output.size() != 1 || output.rank() != 0) {
          return ShapeError("Sum output must be a scalar", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("Square(Sum(Mul(a, a)))",
                     [](const Variable& a) { return Square(Sum(Mul(a, a))); },
                     ExA23());
      });
  add("RowSum", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "RowSum input"));
        if (output.rank() != 1 || output.dim(0) != a.dim(0)) {
          return ShapeError("RowSum output must be [rows]", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(RowSum(a))",
                     [](const Variable& a) { return SumSq(RowSum(a)); },
                     ExA23());
      });
  add("TileCols", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "TileCols input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(0)) {
          return ShapeError("TileCols output must be [n, cols]", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(TileCols(a, 3))",
                     [](const Variable& a) { return SumSq(TileCols(a, 3)); },
                     ExV4());
      });
  add("ConcatCols", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "ConcatCols lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "ConcatCols rhs"));
        if (a.dim(0) != b.dim(0) || output.rank() != 2 ||
            output.dim(0) != a.dim(0) ||
            output.dim(1) != a.dim(1) + b.dim(1)) {
          return ShapeError("ConcatCols must stack columns of equal-row "
                            "matrices",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(ConcatCols(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(ConcatCols(a, b));
                     },
                     ExA23(), ExB23());
      });
  add("SliceCols", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "SliceCols input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(0) ||
            output.dim(1) > a.dim(1)) {
          return ShapeError("SliceCols output must keep rows and narrow "
                            "columns",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(SliceCols(a, 1, 3))",
                     [](const Variable& a) {
                       return SumSq(SliceCols(a, 1, 3));
                     },
                     ExA23());
      });
  add("PadCols", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "PadCols input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(0) ||
            output.dim(1) < a.dim(1)) {
          return ShapeError("PadCols output must keep rows and widen columns",
                            inputs, output);
        }
        return Status::Ok();
      },
      // Only reachable as the backward of SliceCols; exercised by that op's
      // second-order check.
      nullptr);
  add("Concat1", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "Concat1 lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 1, "Concat1 rhs"));
        if (output.rank() != 1 || output.dim(0) != a.dim(0) + b.dim(0)) {
          return ShapeError("Concat1 output must be [na+nb]", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(Concat1(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(Concat1(a, b));
                     },
                     ExV4(), ExW4(), /*hvp_arg=*/1);
      });
  add("Slice1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "Slice1 input"));
        if (output.rank() != 1 || output.dim(0) > a.dim(0)) {
          return ShapeError("Slice1 output must be a narrower vector", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(Slice1(a, 1, 4))",
                     [](const Variable& a) { return SumSq(Slice1(a, 1, 4)); },
                     ExV4());
      });
  add("Pad1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "Pad1 input"));
        if (output.rank() != 1 || output.dim(0) < a.dim(0)) {
          return ShapeError("Pad1 output must be a wider vector", inputs,
                            output);
        }
        return Status::Ok();
      },
      // Only reachable as the backward of Slice1.
      nullptr);
  add("GatherRows", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "GatherRows input"));
        if (output.rank() != 2 || output.dim(1) != a.dim(1)) {
          return ShapeError("GatherRows output must keep the column count",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(GatherRows(a, {0,2,1,2}))",
                     [](const Variable& a) {
                       return SumSq(GatherRows(a, MakeIndex({0, 2, 1, 2})));
                     },
                     ExM32());
      });
  add("ScatterAddRows", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "ScatterAddRows input"));
        if (output.rank() != 2 || output.dim(1) != a.dim(1)) {
          return ShapeError("ScatterAddRows output must keep the column "
                            "count",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(ScatterAddRows(a, {2,0,2}, 4))",
                     [](const Variable& a) {
                       return SumSq(
                           ScatterAddRows(a, MakeIndex({2, 0, 2}), 4));
                     },
                     ExM32());
      });
  add("Gather1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        MSOPDS_RETURN_IF_ERROR(ExpectRank(*inputs[0], 1, "Gather1 input"));
        return ExpectRank(output, 1, "Gather1 output");
      },
      [] {
        return Case1("SumSq(Gather1(a, {3,0,0,2}))",
                     [](const Variable& a) {
                       return SumSq(Gather1(a, MakeIndex({3, 0, 0, 2})));
                     },
                     ExV4());
      });
  add("ScatterAdd1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        MSOPDS_RETURN_IF_ERROR(
            ExpectRank(*inputs[0], 1, "ScatterAdd1 input"));
        return ExpectRank(output, 1, "ScatterAdd1 output");
      },
      [] {
        return Case1("SumSq(ScatterAdd1(a, {1,1,4,0}, 5))",
                     [](const Variable& a) {
                       return SumSq(
                           ScatterAdd1(a, MakeIndex({1, 1, 4, 0}), 5));
                     },
                     ExV4());
      });
  add("SpMM", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& w = *inputs[0];
        const Tensor& x = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(w, 1, "SpMM weights"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(x, 2, "SpMM features"));
        if (output.rank() != 2 || output.dim(1) != x.dim(1)) {
          return ShapeError("SpMM output must keep the feature width", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(SpMM(dst, src, w, x, 2))",
                     [](const Variable& w, const Variable& x) {
                       return SumSq(SpMM(MakeIndex({0, 1, 1, 0}),
                                         MakeIndex({0, 1, 2, 2}), w, x, 2));
                     },
                     ExV4(), ExM32());
  });
  add("EdgeDot", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "EdgeDot lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "EdgeDot rhs"));
        if (a.dim(1) != b.dim(1)) {
          return ShapeError("EdgeDot operands must share the feature width",
                            inputs, output);
        }
        return ExpectRank(output, 1, "EdgeDot output");
      },
      [] {
        return Case2("SumSq(EdgeDot(a, b, ai, bi))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(EdgeDot(a, b, MakeIndex({0, 1, 1, 2}),
                                            MakeIndex({1, 0, 2, 2})));
                     },
                     ExM32(), ExM32().Clone(), /*hvp_arg=*/1);
      });
  return registry;
}

}  // namespace

const std::vector<OpSpec>& OpRegistry() {
  static const std::vector<OpSpec>* const registry =
      new std::vector<OpSpec>(BuildOpRegistry());
  return *registry;
}

const OpSpec* FindOpSpec(const std::string& name) {
  for (const OpSpec& spec : OpRegistry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace msopds
