#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "tensor/simd.h"
#include "tensor/verify.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

bool IsScalarLike(const Tensor& t) { return t.size() == 1; }

// ---------------------------------------------------------------------------
// Parallel kernel plumbing. Every kernel partitions its work on a fixed
// chunk grid (a function of shapes only, never of the thread count) and
// each chunk writes a disjoint output region, so results are bit-identical
// at any MSOPDS_THREADS setting. See DESIGN.md "Parallel runtime".
// ---------------------------------------------------------------------------

// Elementwise / flat chunk size. Inputs at or below this size form a
// one-chunk grid and run inline on the calling thread.
constexpr int64_t kElementGrain = 4096;

// Row-partitioned kernels chunk rows so one chunk covers roughly
// kElementGrain scalars.
int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, kElementGrain / std::max<int64_t>(1, cols));
}

// Runs fn(begin, end) over the fixed elementwise grid.
template <typename Fn>
void ParallelChunks(int64_t total, int64_t grain, Fn&& fn) {
  ThreadPool::Global().ParallelFor(
      total, grain,
      [&fn](int64_t begin, int64_t end, int64_t) { fn(begin, end); });
}

// Clone-and-transform unary kernel.
template <typename Fn>
Tensor UnaryKernel(const Tensor& input, Fn&& fn) {
  Tensor out = input.Clone();
  double* po = out.data();
  ParallelChunks(out.size(), kElementGrain,
                 [po, &fn](int64_t begin, int64_t end) {
                   for (int64_t i = begin; i < end; ++i) po[i] = fn(po[i]);
                 });
  return out;
}

// Span-at-a-time unary kernel: `fn(in, out, n)` maps a contiguous chunk
// through one of the simd.h primitives. Same chunk grid as UnaryKernel,
// without the Clone's redundant copy of the input values.
template <typename Fn>
Tensor SpanKernel(const Tensor& input, Fn&& fn) {
  Tensor out(input.shape());
  const double* pa = input.data();
  double* po = out.data();
  ParallelChunks(out.size(), kElementGrain,
                 [pa, po, &fn](int64_t begin, int64_t end) {
                   fn(pa + begin, po + begin, end - begin);
                 });
  return out;
}

// Typed view of an IndexVec: hoists the per-element size_t casts out of
// the sparse kernels' inner loops; Debug-checked like TensorSpan.
class IndexView {
 public:
  explicit IndexView(const IndexVec& idx)
      : data_(idx->data()), size_(static_cast<int64_t>(idx->size())) {}

  int64_t operator[](int64_t i) const {
    MSOPDS_DCHECK_GE(i, 0);
    MSOPDS_DCHECK_LT(i, size_);
    return data_[i];
  }

  int64_t size() const { return size_; }

 private:
  const int64_t* data_;
  int64_t size_;
};

// Destination-bucketed scatter plan: edge k goes to bucket dst[k]/grain.
// Bucket order preserves edge order, so each destination row accumulates
// its contributions in exactly the serial edge order, and buckets own
// disjoint row ranges — no atomics. Destinations are bounds-checked here
// in edge order, matching the serial loop's abort point.
std::vector<std::vector<int64_t>> BucketByDestination(const IndexView& dst,
                                                      int64_t num_rows,
                                                      int64_t grain) {
  std::vector<std::vector<int64_t>> buckets(
      static_cast<size_t>(NumChunks(num_rows, grain)));
  for (int64_t k = 0; k < dst.size(); ++k) {
    const int64_t r = dst[k];
    MSOPDS_CHECK_GE(r, 0);
    MSOPDS_CHECK_LT(r, num_rows);
    buckets[static_cast<size_t>(r / grain)].push_back(k);
  }
  return buckets;
}

// Creates a recorded op node. `backward` may be empty when no input
// requires grad (the node then acts as a constant).
Variable MakeOp(const char* name, Tensor value, std::vector<Variable> inputs,
                internal::Node::BackwardFn backward) {
  bool requires_grad = false;
  for (const Variable& v : inputs) {
    MSOPDS_CHECK(v.defined()) << "undefined input to op " << name;
    requires_grad = requires_grad || v.requires_grad();
  }
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op_name = name;
  if (requires_grad) {
    internal::AttachInputs(node.get(), std::move(inputs));
    node->backward = std::move(backward);
  }
  return Variable::FromNode(std::move(node));
}

// Reduces a gradient to match the (possibly scalar-broadcast) input,
// including the exact rank of size-1 tensors ([] vs [1]).
Variable ReduceLike(const Variable& grad, const Variable& input) {
  Variable reduced = grad;
  if (IsScalarLike(input.value()) && grad.value().size() > 1) {
    reduced = Sum(grad);
  }
  if (!reduced.value().SameShape(input.value())) {
    reduced = Reshape(reduced, input.value().shape());
  }
  return reduced;
}

enum class BinaryKind { kAdd, kSub, kMul, kDiv };

Tensor EvalBinary(BinaryKind kind, const Tensor& a, const Tensor& b) {
  const bool a_scalar = IsScalarLike(a);
  const bool b_scalar = IsScalarLike(b);
  MSOPDS_CHECK(a.SameShape(b) || a_scalar || b_scalar)
      << "shape mismatch: " << a.DebugString(2) << " vs " << b.DebugString(2);
  // Output takes the non-scalar operand's shape; when both are size-1 the
  // higher-rank shape wins so [1] op [] keeps shape [1].
  const Tensor& shaped = !a_scalar ? a
                         : !b_scalar ? b
                         : (a.rank() >= b.rank() ? a : b);
  Tensor out(shaped.shape());
  const int64_t n = out.size();
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  // Same-shape operands take the vectorized elementwise primitives
  // (bit-exact vs the scalar loop, DESIGN.md §14); the rarer
  // scalar-broadcast forms keep the reference loop below.
  if (!a_scalar && !b_scalar) {
    ParallelChunks(n, kElementGrain, [&](int64_t begin, int64_t end) {
      const int64_t len = end - begin;
      switch (kind) {
        case BinaryKind::kAdd:
          simd::Add(pa + begin, pb + begin, po + begin, len);
          break;
        case BinaryKind::kSub:
          simd::Sub(pa + begin, pb + begin, po + begin, len);
          break;
        case BinaryKind::kMul:
          simd::Mul(pa + begin, pb + begin, po + begin, len);
          break;
        case BinaryKind::kDiv:
          simd::Div(pa + begin, pb + begin, po + begin, len);
          break;
      }
    });
    return out;
  }
  ParallelChunks(n, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const double x = a_scalar ? pa[0] : pa[i];
      const double y = b_scalar ? pb[0] : pb[i];
      switch (kind) {
        case BinaryKind::kAdd:
          po[i] = x + y;
          break;
        case BinaryKind::kSub:
          po[i] = x - y;
          break;
        case BinaryKind::kMul:
          po[i] = x * y;
          break;
        case BinaryKind::kDiv:
          po[i] = x / y;
          break;
      }
    }
  });
  return out;
}

}  // namespace

IndexVec MakeIndex(std::vector<int64_t> indices) {
  return std::make_shared<const std::vector<int64_t>>(std::move(indices));
}

Variable Add(const Variable& a, const Variable& b) {
  return MakeOp("Add", EvalBinary(BinaryKind::kAdd, a.value(), b.value()),
                {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{ReduceLike(g, in[0]),
                                               ReduceLike(g, in[1])};
                });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOp("Sub", EvalBinary(BinaryKind::kSub, a.value(), b.value()),
                {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{ReduceLike(g, in[0]),
                                               ReduceLike(Neg(g), in[1])};
                });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOp("Mul", EvalBinary(BinaryKind::kMul, a.value(), b.value()),
                {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      ReduceLike(Mul(g, in[1]), in[0]),
                      ReduceLike(Mul(g, in[0]), in[1])};
                });
}

Variable Div(const Variable& a, const Variable& b) {
  return MakeOp(
      "Div", EvalBinary(BinaryKind::kDiv, a.value(), b.value()), {a, b},
      [](const Variable& g, const std::vector<Variable>& in) {
        Variable ga = ReduceLike(Div(g, in[1]), in[0]);
        Variable gb = ReduceLike(
            Neg(Mul(g, Div(in[0], Mul(in[1], in[1])))), in[1]);
        return std::vector<Variable>{std::move(ga), std::move(gb)};
      });
}

Variable Neg(const Variable& a) {
  Tensor out = SpanKernel(a.value(),
                          [](const double* in, double* po, int64_t n) {
                            simd::Neg(in, po, n);
                          });
  return MakeOp("Neg", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Neg(g)};
                });
}

Variable ScalarMul(const Variable& a, double c) {
  Tensor out = SpanKernel(a.value(),
                          [c](const double* in, double* po, int64_t n) {
                            simd::Scale(in, c, po, n);
                          });
  return MakeOp("ScalarMul", std::move(out), {a},
                [c](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{ScalarMul(g, c)};
                });
}

Variable AddScalar(const Variable& a, double c) {
  Tensor out = SpanKernel(a.value(),
                          [c](const double* in, double* po, int64_t n) {
                            simd::Offset(in, c, po, n);
                          });
  return MakeOp("AddScalar", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{g};
                });
}

Variable Exp(const Variable& a) {
  Tensor out = UnaryKernel(a.value(), [](double x) { return std::exp(x); });
  return MakeOp("Exp", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  // Recomputed so the gradient graph depends only on inputs.
                  return std::vector<Variable>{Mul(g, Exp(in[0]))};
                });
}

Variable Log(const Variable& a) {
  Tensor out = UnaryKernel(a.value(), [](double x) { return std::log(x); });
  return MakeOp("Log", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{Div(g, in[0])};
                });
}

Variable Sqrt(const Variable& a) {
  // IEEE sqrt is correctly rounded in every backend, so the vector path
  // stays bit-exact; Exp/Log above stay on scalar libm (§14).
  Tensor out = SpanKernel(a.value(),
                          [](const double* in, double* po, int64_t n) {
                            simd::Sqrt(in, po, n);
                          });
  return MakeOp("Sqrt", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      Div(g, ScalarMul(Sqrt(in[0]), 2.0))};
                });
}

Variable Square(const Variable& a) { return Mul(a, a); }

Variable Reshape(const Variable& a, std::vector<int64_t> shape) {
  Tensor out(shape);
  MSOPDS_CHECK_EQ(out.size(), a.value().size()) << "Reshape must keep size";
  const double* pa = a.value().data();
  double* po = out.data();
  ParallelChunks(out.size(), kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = pa[i];
  });
  const std::vector<int64_t> original = a.value().shape();
  return MakeOp("Reshape", std::move(out), {a},
                [original](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Reshape(g, original)};
                });
}

Variable Where(const Tensor& mask, const Variable& a, const Variable& b) {
  MSOPDS_CHECK(mask.SameShape(a.value()));
  MSOPDS_CHECK(mask.SameShape(b.value()));
  Tensor out(a.value().shape());
  const double* pm = mask.data();
  const double* pa = a.value().data();
  const double* pb = b.value().data();
  double* po = out.data();
  ParallelChunks(out.size(), kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      po[i] = pm[i] != 0.0 ? pa[i] : pb[i];
    }
  });
  Tensor mask_copy = mask.Clone();
  return MakeOp(
      "Where", std::move(out), {a, b},
      [mask_copy](const Variable& g, const std::vector<Variable>&) {
        Tensor inv = mask_copy.Clone();
        for (int64_t i = 0; i < inv.size(); ++i)
          inv.data()[i] = inv.data()[i] != 0.0 ? 0.0 : 1.0;
        return std::vector<Variable>{Mul(g, Constant(mask_copy)),
                                     Mul(g, Constant(inv))};
      });
}

Tensor GreaterZeroMask(const Tensor& x) {
  Tensor mask(x.shape());
  const double* px = x.data();
  double* pm = mask.data();
  ParallelChunks(x.size(), kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) pm[i] = px[i] > 0.0 ? 1.0 : 0.0;
  });
  return mask;
}

Variable MatMul(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(1), tb.dim(0));
  const int64_t n = ta.dim(0), k = ta.dim(1), m = tb.dim(1);
  Tensor out({n, m});
  const double* pa = ta.data();
  const double* pb = tb.data();
  double* po = out.data();
  // Cache-tiled over k: a kKBlock-row slab of B stays hot while every row
  // of the chunk consumes it. k-blocks advance in order, so each output
  // element accumulates over kk in strictly increasing order — the exact
  // serial order, at any thread count. Output rows are chunk-disjoint.
  // Contributing k-steps are issued four at a time through simd::Axpy4
  // (same association as sequential Axpy calls, so bit-exact, but the
  // output row is loaded/stored once per four steps instead of per
  // step); stragglers at the block tail flush through plain Axpy.
  constexpr int64_t kKBlock = 32;
  ThreadPool::Global().ParallelFor(
      n, RowGrain(m), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t kb = 0; kb < k; kb += kKBlock) {
          const int64_t kb_end = std::min(kb + kKBlock, k);
          for (int64_t i = row_begin; i < row_end; ++i) {
            const double* arow = pa + i * k;
            double* orow = po + i * m;
            double coeff[4];
            const double* rows[4];
            int pending = 0;
            for (int64_t kk = kb; kk < kb_end; ++kk) {
              const double aik = arow[kk];
              if (aik == 0.0) continue;
              coeff[pending] = aik;
              rows[pending] = pb + kk * m;
              if (++pending == 4) {
                simd::Axpy4(coeff, rows[0], rows[1], rows[2], rows[3], orow,
                            m);
                pending = 0;
              }
            }
            for (int p = 0; p < pending; ++p) {
              simd::Axpy(coeff[p], rows[p], orow, m);
            }
          }
        }
      });
  // Transposed-layout kernels read A and B in their original layouts, so
  // the backward no longer materializes Transpose() copies per grad step.
  return MakeOp("MatMul", std::move(out), {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      MatMulNT(g, in[1]),
                      MatMulTN(in[0], g)};
                });
}

Variable MatMulNT(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(1), tb.dim(1));
  const int64_t n = ta.dim(0), k = ta.dim(1), m = tb.dim(0);
  Tensor out({n, m});
  const double* pa = ta.data();
  const double* pb = tb.data();
  double* po = out.data();
  // A·Bᵀ with B in its original row-major layout: out[i][j] is the dot of
  // two contiguous rows. The reduction uses simd::Dot's fixed 4-lane
  // order (deterministic; ULP-different from a serial sum, see §14).
  // Output rows are chunk-disjoint as in MatMul.
  ThreadPool::Global().ParallelFor(
      n, RowGrain(m), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const double* arow = pa + i * k;
          double* orow = po + i * m;
          for (int64_t j = 0; j < m; ++j) {
            orow[j] = simd::Dot(arow, pb + j * k, k);
          }
        }
      });
  return MakeOp("MatMulNT", std::move(out), {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      MatMul(g, in[1]),
                      MatMulTN(g, in[0])};
                });
}

Variable MatMulTN(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(0), tb.dim(0));
  const int64_t k = ta.dim(0), n = ta.dim(1), m = tb.dim(1);
  Tensor out({n, m});
  const double* pa = ta.data();
  const double* pb = tb.data();
  double* po = out.data();
  // Aᵀ·B with A in its original layout: out row i accumulates
  // A[kk][i] * B[kk][:] over kk in strictly increasing order — the same
  // accumulation order as MatMul on pre-transposed operands, so swapping
  // the backward to this kernel is bit-exact for this factor. k-blocked
  // like MatMul so a slab of B stays hot; rows are chunk-disjoint.
  // Contributing k-steps fuse four at a time via simd::Axpy4 as in
  // MatMul (bit-exact with sequential Axpy; quarter the orow traffic).
  constexpr int64_t kKBlock = 32;
  ThreadPool::Global().ParallelFor(
      n, RowGrain(m), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t kb = 0; kb < k; kb += kKBlock) {
          const int64_t kb_end = std::min(kb + kKBlock, k);
          for (int64_t i = row_begin; i < row_end; ++i) {
            double* orow = po + i * m;
            double coeff[4];
            const double* rows[4];
            int pending = 0;
            for (int64_t kk = kb; kk < kb_end; ++kk) {
              const double aik = pa[kk * n + i];
              if (aik == 0.0) continue;
              coeff[pending] = aik;
              rows[pending] = pb + kk * m;
              if (++pending == 4) {
                simd::Axpy4(coeff, rows[0], rows[1], rows[2], rows[3], orow,
                            m);
                pending = 0;
              }
            }
            for (int p = 0; p < pending; ++p) {
              simd::Axpy(coeff[p], rows[p], orow, m);
            }
          }
        }
      });
  return MakeOp("MatMulTN", std::move(out), {a, b},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      MatMulNT(in[1], g),
                      MatMul(in[0], g)};
                });
}

Variable Transpose(const Variable& a) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  const int64_t n = t.dim(0), m = t.dim(1);
  Tensor out({m, n});
  const double* pt = t.data();
  double* po = out.data();
  ThreadPool::Global().ParallelFor(
      m, RowGrain(n), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t j = row_begin; j < row_end; ++j) {
          double* orow = po + j * n;
          for (int64_t i = 0; i < n; ++i) orow[i] = pt[i * m + j];
        }
      });
  return MakeOp("Transpose", std::move(out), {a},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Transpose(g)};
                });
}

Variable Sum(const Variable& a) {
  return MakeOp("Sum", Tensor::Scalar(a.value().Sum()), {a},
                [](const Variable& g, const std::vector<Variable>& in) {
                  return std::vector<Variable>{
                      Mul(Constant(Tensor::Ones(in[0].value().shape())), g)};
                });
}

Variable Mean(const Variable& a) {
  const int64_t n = a.value().size();
  MSOPDS_CHECK_GT(n, 0);
  return ScalarMul(Sum(a), 1.0 / static_cast<double>(n));
}

Variable RowSum(const Variable& a) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  const int64_t n = t.dim(0), m = t.dim(1);
  Tensor out({n});
  const double* pt = t.data();
  double* po = out.data();
  ThreadPool::Global().ParallelFor(
      n, RowGrain(m), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          // Fixed 4-lane reduction (simd.h): deterministic at any thread
          // count and bit-equal across backends.
          po[i] = simd::Sum(pt + i * m, m);
        }
      });
  return MakeOp("RowSum", std::move(out), {a},
                [m](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{TileCols(g, m)};
                });
}

Variable TileCols(const Variable& v, int64_t cols) {
  const Tensor& t = v.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_GT(cols, 0);
  const int64_t n = t.dim(0);
  Tensor out({n, cols});
  const double* pt = t.data();
  double* po = out.data();
  ThreadPool::Global().ParallelFor(
      n, RowGrain(cols), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          double* orow = po + i * cols;
          const double value = pt[i];
          for (int64_t j = 0; j < cols; ++j) orow[j] = value;
        }
      });
  return MakeOp("TileCols", std::move(out), {v},
                [](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{RowSum(g)};
                });
}

namespace {

// Inserts a [N, width] block into a zero [N, total] matrix at column lo.
// Adjoint of SliceCols; internal because users only need the pair.
Variable PadCols(const Variable& a, int64_t lo, int64_t total);

}  // namespace

Variable ConcatCols(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(0), tb.dim(0));
  const int64_t n = ta.dim(0), ca = ta.dim(1), cb = tb.dim(1);
  Tensor out({n, ca + cb});
  const double* pa = ta.data();
  const double* pb = tb.data();
  double* po = out.data();
  ThreadPool::Global().ParallelFor(
      n, RowGrain(ca + cb),
      [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          double* orow = po + i * (ca + cb);
          const double* arow = pa + i * ca;
          const double* brow = pb + i * cb;
          for (int64_t j = 0; j < ca; ++j) orow[j] = arow[j];
          for (int64_t j = 0; j < cb; ++j) orow[ca + j] = brow[j];
        }
      });
  return MakeOp("ConcatCols", std::move(out), {a, b},
                [ca, cb](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{SliceCols(g, 0, ca),
                                               SliceCols(g, ca, ca + cb)};
                });
}

Variable SliceCols(const Variable& a, int64_t lo, int64_t hi) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  MSOPDS_CHECK_GE(lo, 0);
  MSOPDS_CHECK_LE(lo, hi);
  MSOPDS_CHECK_LE(hi, t.dim(1));
  const int64_t n = t.dim(0), total = t.dim(1);
  const int64_t w = hi - lo;
  Tensor out({n, w});
  const double* pt = t.data();
  double* po = out.data();
  ThreadPool::Global().ParallelFor(
      n, RowGrain(w), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const double* row = pt + i * total + lo;
          double* orow = po + i * w;
          for (int64_t j = 0; j < w; ++j) orow[j] = row[j];
        }
      });
  return MakeOp("SliceCols", std::move(out), {a},
                [lo, total](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{PadCols(g, lo, total)};
                });
}

namespace {

Variable PadCols(const Variable& a, int64_t lo, int64_t total) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  MSOPDS_CHECK_LE(lo + t.dim(1), total);
  const int64_t n = t.dim(0), w = t.dim(1);
  Tensor out({n, total});
  const double* pt = t.data();
  double* po = out.data();
  ThreadPool::Global().ParallelFor(
      n, RowGrain(total), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const double* row = pt + i * w;
          double* orow = po + i * total + lo;
          for (int64_t j = 0; j < w; ++j) orow[j] = row[j];
        }
      });
  return MakeOp("PadCols", std::move(out), {a},
                [lo, w](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{SliceCols(g, lo, lo + w)};
                });
}

// Inserts a vector block into a zero [total] vector at offset lo.
Variable Pad1(const Variable& a, int64_t lo, int64_t total) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_LE(lo + t.dim(0), total);
  const int64_t w = t.dim(0);
  Tensor out({total});
  const ConstTensorSpan pt = t.span();
  const TensorSpan po = out.mutable_span();
  ParallelChunks(w, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[lo + i] = pt[i];
  });
  return MakeOp("Pad1", std::move(out), {a},
                [lo, w](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Slice1(g, lo, lo + w)};
                });
}

}  // namespace

Variable Concat1(const Variable& a, const Variable& b) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 1);
  MSOPDS_CHECK_EQ(tb.rank(), 1);
  const int64_t na = ta.dim(0), nb = tb.dim(0);
  Tensor out({na + nb});
  const ConstTensorSpan pa = ta.span();
  const ConstTensorSpan pb = tb.span();
  const TensorSpan po = out.mutable_span();
  ParallelChunks(na, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = pa[i];
  });
  ParallelChunks(nb, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[na + i] = pb[i];
  });
  return MakeOp("Concat1", std::move(out), {a, b},
                [na, nb](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Slice1(g, 0, na),
                                               Slice1(g, na, na + nb)};
                });
}

Variable Slice1(const Variable& a, int64_t lo, int64_t hi) {
  const Tensor& t = a.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_GE(lo, 0);
  MSOPDS_CHECK_LE(lo, hi);
  MSOPDS_CHECK_LE(hi, t.dim(0));
  const int64_t total = t.dim(0);
  Tensor out({hi - lo});
  const ConstTensorSpan pt = t.span();
  const TensorSpan po = out.mutable_span();
  ParallelChunks(hi - lo, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = pt[lo + i];
  });
  return MakeOp("Slice1", std::move(out), {a},
                [lo, total](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{Pad1(g, lo, total)};
                });
}

Variable GatherRows(const Variable& x, const IndexVec& idx) {
  const Tensor& t = x.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  const int64_t n = t.dim(0), d = t.dim(1);
  const IndexView rows(idx);
  const int64_t k = rows.size();
  // Validate in index order (serial abort point), then copy in parallel.
  for (int64_t i = 0; i < k; ++i) {
    MSOPDS_CHECK_GE(rows[i], 0);
    MSOPDS_CHECK_LT(rows[i], n);
  }
  Tensor out({k, d});
  const double* pt = t.data();
  double* po = out.data();
  ThreadPool::Global().ParallelFor(
      k, RowGrain(d), [&](int64_t row_begin, int64_t row_end, int64_t) {
        for (int64_t i = row_begin; i < row_end; ++i) {
          const double* row = pt + rows[i] * d;
          double* orow = po + i * d;
          for (int64_t j = 0; j < d; ++j) orow[j] = row[j];
        }
      });
  return MakeOp("GatherRows", std::move(out), {x},
                [idx, n](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{ScatterAddRows(g, idx, n)};
                });
}

Variable ScatterAddRows(const Variable& g, const IndexVec& idx, int64_t rows) {
  const Tensor& t = g.value();
  MSOPDS_CHECK_EQ(t.rank(), 2);
  MSOPDS_CHECK_EQ(t.dim(0), static_cast<int64_t>(idx->size()));
  const int64_t k = t.dim(0), d = t.dim(1);
  const IndexView dst(idx);
  Tensor out({rows, d});
  const double* pt = t.data();
  double* po = out.data();
  // Destination-bucketed scatter: each chunk owns a disjoint row range
  // and applies its bucket's updates in edge order, so no atomics and
  // per-row accumulation order equals the serial loop's.
  const int64_t grain = RowGrain(d);
  const auto buckets = BucketByDestination(dst, rows, grain);
  ThreadPool::Global().ParallelFor(
      rows, grain, [&](int64_t, int64_t, int64_t chunk) {
        for (const int64_t i : buckets[static_cast<size_t>(chunk)]) {
          simd::AddInPlace(po + dst[i] * d, pt + i * d, d);
        }
      });
  return MakeOp("ScatterAddRows", std::move(out), {g},
                [idx](const Variable& gg, const std::vector<Variable>&) {
                  return std::vector<Variable>{GatherRows(gg, idx)};
                });
}

Variable Gather1(const Variable& x, const IndexVec& idx) {
  const Tensor& t = x.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  const int64_t n = t.dim(0);
  const IndexView src(idx);
  const int64_t k = src.size();
  for (int64_t i = 0; i < k; ++i) {
    MSOPDS_CHECK_GE(src[i], 0);
    MSOPDS_CHECK_LT(src[i], n);
  }
  Tensor out({k});
  const ConstTensorSpan pt = t.span();
  const TensorSpan po = out.mutable_span();
  ParallelChunks(k, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) po[i] = pt[src[i]];
  });
  return MakeOp("Gather1", std::move(out), {x},
                [idx, n](const Variable& g, const std::vector<Variable>&) {
                  return std::vector<Variable>{ScatterAdd1(g, idx, n)};
                });
}

Variable ScatterAdd1(const Variable& g, const IndexVec& idx, int64_t size) {
  const Tensor& t = g.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  MSOPDS_CHECK_EQ(t.dim(0), static_cast<int64_t>(idx->size()));
  const IndexView dst(idx);
  Tensor out({size});
  const ConstTensorSpan pt = t.span();
  const TensorSpan po = out.mutable_span();
  const int64_t grain = kElementGrain;
  const auto buckets = BucketByDestination(dst, size, grain);
  ThreadPool::Global().ParallelFor(
      size, grain, [&](int64_t, int64_t, int64_t chunk) {
        for (const int64_t i : buckets[static_cast<size_t>(chunk)]) {
          po[dst[i]] += pt[i];
        }
      });
  return MakeOp("ScatterAdd1", std::move(out), {g},
                [idx](const Variable& gg, const std::vector<Variable>&) {
                  return std::vector<Variable>{Gather1(gg, idx)};
                });
}

Variable SpMM(const IndexVec& dst, const IndexVec& src, const Variable& w,
              const Variable& x, int64_t num_dst) {
  const Tensor& tw = w.value();
  const Tensor& tx = x.value();
  MSOPDS_CHECK_EQ(tw.rank(), 1);
  MSOPDS_CHECK_EQ(tx.rank(), 2);
  const int64_t e = tw.dim(0);
  MSOPDS_CHECK_EQ(e, static_cast<int64_t>(dst->size()));
  MSOPDS_CHECK_EQ(e, static_cast<int64_t>(src->size()));
  const int64_t num_src = tx.dim(0), d = tx.dim(1);
  const IndexView dsti(dst);
  const IndexView srci(src);
  for (int64_t k = 0; k < e; ++k) {
    MSOPDS_CHECK_GE(srci[k], 0);
    MSOPDS_CHECK_LT(srci[k], num_src);
  }
  Tensor out({num_dst, d});
  const double* pw = tw.data();
  const double* px = tx.data();
  double* po = out.data();
  // Row-partitioned destination-bucketed scatter (see ScatterAddRows):
  // each chunk of destination rows applies its edges in edge order.
  // Runs of consecutive edges into the same destination row fuse four
  // at a time through simd::Axpy4 — same association as sequential
  // Axpy calls (bit-exact), but the destination row is loaded/stored
  // once per four edges. Typical edge lists arrive grouped by
  // destination, so runs are long.
  const int64_t grain = RowGrain(d);
  const auto buckets = BucketByDestination(dsti, num_dst, grain);
  ThreadPool::Global().ParallelFor(
      num_dst, grain, [&](int64_t, int64_t, int64_t chunk) {
        const auto& bucket = buckets[static_cast<size_t>(chunk)];
        const size_t bn = bucket.size();
        size_t t = 0;
        while (t < bn) {
          const int64_t row = dsti[bucket[t]];
          double* orow = po + row * d;
          double coeff[4];
          const double* rows[4];
          int pending = 0;
          while (t < bn && dsti[bucket[t]] == row) {
            const int64_t k = bucket[t];
            ++t;
            const double wk = pw[k];
            if (wk == 0.0) continue;
            coeff[pending] = wk;
            rows[pending] = px + srci[k] * d;
            if (++pending == 4) {
              simd::Axpy4(coeff, rows[0], rows[1], rows[2], rows[3], orow, d);
              pending = 0;
            }
          }
          for (int p = 0; p < pending; ++p) {
            simd::Axpy(coeff[p], rows[p], orow, d);
          }
        }
      });
  return MakeOp(
      "SpMM", std::move(out), {w, x},
      [dst, src, num_src](const Variable& g, const std::vector<Variable>& in) {
        Variable gw = EdgeDot(g, in[1], dst, src);
        Variable gx = SpMM(src, dst, in[0], g, num_src);
        return std::vector<Variable>{std::move(gw), std::move(gx)};
      });
}

Variable EdgeDot(const Variable& a, const Variable& b, const IndexVec& ai,
                 const IndexVec& bi) {
  const Tensor& ta = a.value();
  const Tensor& tb = b.value();
  MSOPDS_CHECK_EQ(ta.rank(), 2);
  MSOPDS_CHECK_EQ(tb.rank(), 2);
  MSOPDS_CHECK_EQ(ta.dim(1), tb.dim(1));
  MSOPDS_CHECK_EQ(ai->size(), bi->size());
  const int64_t e = static_cast<int64_t>(ai->size());
  const int64_t na = ta.dim(0), nb = tb.dim(0), d = ta.dim(1);
  const IndexView aii(ai);
  const IndexView bii(bi);
  for (int64_t k = 0; k < e; ++k) {
    MSOPDS_CHECK_GE(aii[k], 0);
    MSOPDS_CHECK_LT(aii[k], na);
    MSOPDS_CHECK_GE(bii[k], 0);
    MSOPDS_CHECK_LT(bii[k], nb);
  }
  Tensor out({e});
  const double* pa = ta.data();
  const double* pb = tb.data();
  double* po = out.data();
  // Edge-partitioned: each edge owns its output element. The per-edge
  // dot uses simd::Dot's fixed 4-lane order — a pure function of the
  // edge, so still bit-identical at any thread count.
  ThreadPool::Global().ParallelFor(
      e, RowGrain(d), [&](int64_t edge_begin, int64_t edge_end, int64_t) {
        for (int64_t k = edge_begin; k < edge_end; ++k) {
          po[k] = simd::Dot(pa + aii[k] * d, pb + bii[k] * d, d);
        }
      });
  return MakeOp(
      "EdgeDot", std::move(out), {a, b},
      [ai, bi, na, nb](const Variable& g, const std::vector<Variable>& in) {
        Variable ga = SpMM(ai, bi, g, in[1], na);
        Variable gb = SpMM(bi, ai, g, in[0], nb);
        return std::vector<Variable>{std::move(ga), std::move(gb)};
      });
}

Variable Relu(const Variable& x) {
  const Tensor mask = GreaterZeroMask(x.value());
  return Where(mask, x, Constant(Tensor::Zeros(x.value().shape())));
}

Variable Selu(const Variable& x) {
  // Constants from Klambauer et al. (2017).
  constexpr double kScale = 1.0507009873554805;
  constexpr double kAlpha = 1.6732632423543772;
  const Tensor mask = GreaterZeroMask(x.value());
  Variable negative = ScalarMul(AddScalar(Exp(x), -1.0), kAlpha);
  return ScalarMul(Where(mask, x, negative), kScale);
}

Variable Sigmoid(const Variable& x) {
  Variable one = Constant(Tensor::Ones(x.value().shape()));
  return Div(one, AddScalar(Exp(Neg(x)), 1.0));
}

Variable PairDot(const Variable& a, const Variable& b) {
  return RowSum(Mul(a, b));
}

Variable Dot(const Variable& a, const Variable& b) { return Sum(Mul(a, b)); }

Variable SegmentSoftmax(const Variable& scores, const IndexVec& seg,
                        int64_t num_segments) {
  const Tensor& t = scores.value();
  MSOPDS_CHECK_EQ(t.rank(), 1);
  const int64_t e = t.dim(0);
  MSOPDS_CHECK_EQ(e, static_cast<int64_t>(seg->size()));
  const IndexView segi(seg);
  const ConstTensorSpan pt = t.span();
  // Per-segment max as a constant shift for numerical stability.
  // Segment-partitioned like the scatter kernels: each chunk of segments
  // folds its bucketed edges. max is exact, so any order would do, but
  // the bucketing keeps the structure uniform with SpMM/ScatterAdd.
  std::vector<double> seg_max(static_cast<size_t>(num_segments), -1e300);
  const int64_t grain = kElementGrain;
  const auto buckets = BucketByDestination(segi, num_segments, grain);
  ThreadPool::Global().ParallelFor(
      num_segments, grain, [&](int64_t, int64_t, int64_t chunk) {
        for (const int64_t k : buckets[static_cast<size_t>(chunk)]) {
          double& best = seg_max[static_cast<size_t>(segi[k])];
          best = std::max(best, pt[k]);
        }
      });
  Tensor shift({e});
  const TensorSpan ps = shift.mutable_span();
  ParallelChunks(e, kElementGrain, [&](int64_t begin, int64_t end) {
    for (int64_t k = begin; k < end; ++k) {
      ps[k] = seg_max[static_cast<size_t>(segi[k])];
    }
  });
  Variable exps = Exp(Sub(scores, Constant(shift)));
  Variable denom = ScatterAdd1(exps, seg, num_segments);
  return Div(exps, Gather1(denom, seg));
}

Variable SquaredNorm(const Variable& x) { return Sum(Mul(x, x)); }

// ---------------------------------------------------------------------------
// Shape-inference registry. One OpSpec per primitive recorded above; the
// GraphVerifier replays these checks over recorded graphs, and the
// gradcheck examples let tools/verify_graph sweep every op with first- and
// second-order finite-difference checks.
// ---------------------------------------------------------------------------

namespace {

std::string ShapeOf(const Tensor& t) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < t.shape().size(); ++i) {
    if (i > 0) out << ",";
    out << t.shape()[i];
  }
  out << "]";
  return out.str();
}

Status ShapeError(const char* what, const std::vector<const Tensor*>& inputs,
                  const Tensor& output) {
  std::ostringstream msg;
  msg << what << "; inputs";
  for (const Tensor* in : inputs) msg << " " << ShapeOf(*in);
  msg << " -> output " << ShapeOf(output);
  return Status::InvalidArgument(msg.str());
}

Status ExpectRank(const Tensor& t, int64_t rank, const char* what) {
  if (t.rank() != rank) {
    std::ostringstream msg;
    msg << what << " must have rank " << rank << ", got " << ShapeOf(t);
    return Status::InvalidArgument(msg.str());
  }
  return Status::Ok();
}

// Output shape of the scalar-broadcast elementwise rule (EvalBinary).
Status InferBinary(const std::vector<const Tensor*>& inputs,
                   const Tensor& output) {
  const Tensor& a = *inputs[0];
  const Tensor& b = *inputs[1];
  const bool a_scalar = IsScalarLike(a);
  const bool b_scalar = IsScalarLike(b);
  if (!(a.SameShape(b) || a_scalar || b_scalar)) {
    return ShapeError("operands neither same-shape nor scalar", inputs,
                      output);
  }
  const Tensor& shaped = !a_scalar ? a
                         : !b_scalar ? b
                         : (a.rank() >= b.rank() ? a : b);
  if (!output.SameShape(shaped)) {
    return ShapeError("output shape must match the non-scalar operand",
                      inputs, output);
  }
  return Status::Ok();
}

Status InferUnarySameShape(const std::vector<const Tensor*>& inputs,
                           const Tensor& output) {
  if (!output.SameShape(*inputs[0])) {
    return ShapeError("elementwise output must match input shape", inputs,
                      output);
  }
  return Status::Ok();
}

// Deterministic example operands (values chosen away from the kinks and
// poles of Log/Sqrt/Div).
Tensor ExA23() {
  return Tensor::FromMatrix(2, 3, {0.5, -1.2, 0.3, 1.1, 0.7, -0.4});
}
Tensor ExB23() {
  return Tensor::FromMatrix(2, 3, {0.9, 0.4, -0.8, 0.2, -1.5, 0.6});
}
Tensor ExPos23() {
  return Tensor::FromMatrix(2, 3, {0.7, 1.3, 0.5, 2.1, 0.9, 1.6});
}
Tensor ExV4() { return Tensor::FromVector({0.8, -0.3, 1.2, 0.4}); }
Tensor ExW4() { return Tensor::FromVector({-0.6, 1.1, 0.2, 0.9}); }
Tensor ExM32() {
  return Tensor::FromMatrix(3, 2, {0.3, -0.9, 1.4, 0.2, -0.5, 0.8});
}

// Scalar reduction with a nonzero Hessian so HVP checks are nontrivial.
Variable SumSq(const Variable& x) { return Sum(Mul(x, x)); }

GradcheckCase Case1(const char* description,
                    std::function<Variable(const Variable&)> build,
                    Tensor point) {
  GradcheckCase c;
  c.description = description;
  c.points = {std::move(point)};
  c.fn = [build = std::move(build)](const std::vector<Variable>& p) {
    return build(p[0]);
  };
  return c;
}

GradcheckCase Case2(const char* description,
                    std::function<Variable(const Variable&, const Variable&)>
                        build,
                    Tensor point0, Tensor point1, size_t hvp_arg = 0) {
  GradcheckCase c;
  c.description = description;
  c.points = {std::move(point0), std::move(point1)};
  c.hvp_arg = hvp_arg;
  c.fn = [build = std::move(build)](const std::vector<Variable>& p) {
    return build(p[0], p[1]);
  };
  return c;
}

// ---------------------------------------------------------------------------
// Static write plans. Each builder mirrors its kernel's ParallelFor /
// ParallelChunks grid above, sharing the same grain constants
// (kElementGrain / RowGrain / kReduceGrain), so plan and kernel cannot
// drift apart on grid shape. VerifyWritePlan then proves the per-chunk
// destination ranges disjoint — the invariant that makes the kernels
// bit-identical at every MSOPDS_THREADS setting.
// ---------------------------------------------------------------------------

int64_t ShapeElems(const std::vector<int64_t>& shape) {
  int64_t elems = 1;
  for (const int64_t dim : shape) elems *= dim;
  return elems;
}

// Grid over `units` units writing `width` contiguous output elements
// each: chunk c writes [c*grain*width, min((c+1)*grain, units)*width).
// Covers elementwise kernels (width 1) and full-row kernels (width =
// row length). `covers` is false for kernels whose destination is
// zero-filled first and only partially written (scatters, windows).
WritePlan UnitGridPlan(int64_t units, int64_t grain, int64_t width,
                       int64_t output_elems, bool covers = true) {
  WritePlan plan;
  plan.units = units;
  plan.grain = grain;
  plan.num_chunks = NumChunks(units, grain);
  plan.output_elems = output_elems;
  plan.covers_output = covers;
  plan.writes.reserve(static_cast<size_t>(plan.num_chunks));
  for (int64_t c = 0; c < plan.num_chunks; ++c) {
    const int64_t begin = c * grain;
    const int64_t end = std::min(begin + grain, units);
    plan.writes.push_back({c, begin * width, end * width});
  }
  return plan;
}

// Flat elementwise grid over the whole output.
WritePlan FlatPlan(const std::vector<int64_t>& out_shape) {
  const int64_t elems = ShapeElems(out_shape);
  return UnitGridPlan(elems, kElementGrain, 1, elems);
}

// Row-partitioned grid writing full rows of a [rows, cols] output.
WritePlan RowPlan(const std::vector<int64_t>& out_shape, bool covers = true) {
  const int64_t rows = out_shape[0];
  const int64_t cols = out_shape[1];
  return UnitGridPlan(rows, RowGrain(cols), cols, rows * cols, covers);
}

// Row-partitioned grid where each row write is a `width`-wide window of
// a `stride`-wide row (PadCols). Chunk ranges are the bounding
// intervals of their rows; disjoint across chunks because width never
// exceeds the stride. The window offset (pad lo) is data held in the
// kernel closure, but it shifts every chunk equally and is irrelevant
// to overlap, so the plan takes it as 0.
WritePlan RowWindowPlan(int64_t rows, int64_t width, int64_t stride) {
  const int64_t grain = RowGrain(stride);
  WritePlan plan;
  plan.units = rows;
  plan.grain = grain;
  plan.num_chunks = NumChunks(rows, grain);
  plan.output_elems = rows * stride;
  plan.covers_output = false;
  plan.writes.reserve(static_cast<size_t>(plan.num_chunks));
  for (int64_t c = 0; c < plan.num_chunks; ++c) {
    const int64_t begin = c * grain;
    const int64_t end = std::min(begin + grain, rows);
    plan.writes.push_back(
        {c, begin * stride, (end - 1) * stride + std::min(width, stride)});
  }
  return plan;
}

// Concat1 launches one elementwise grid per operand, back to back; the
// plan renumbers the second grid's chunks after the first and offsets
// its ranges by the first operand's length.
WritePlan Concat1Plan(int64_t na, int64_t nb) {
  WritePlan plan;
  plan.units = na + nb;
  plan.grain = kElementGrain;
  plan.grids = 2;
  plan.output_elems = na + nb;
  const int64_t chunks_a = NumChunks(na, kElementGrain);
  const int64_t chunks_b = NumChunks(nb, kElementGrain);
  plan.num_chunks = chunks_a + chunks_b;
  for (int64_t c = 0; c < chunks_a; ++c) {
    const int64_t begin = c * kElementGrain;
    plan.writes.push_back({c, begin, std::min(begin + kElementGrain, na)});
  }
  for (int64_t c = 0; c < chunks_b; ++c) {
    const int64_t begin = c * kElementGrain;
    plan.writes.push_back({chunks_a + c, na + begin,
                           na + std::min(begin + kElementGrain, nb)});
  }
  return plan;
}

// Sum reduces via ParallelReduceSum: each chunk writes its own partial
// slot, then a fixed pairwise tree folds the slots in ascending lane
// order on the calling thread.
WritePlan ReducePlan(int64_t input_elems) {
  WritePlan plan;
  plan.units = input_elems;
  plan.grain = kReduceGrain;
  plan.num_chunks = NumChunks(input_elems, kReduceGrain);
  plan.output_elems = plan.num_chunks;
  plan.reduction = true;
  for (int64_t c = 0; c < plan.num_chunks; ++c) {
    plan.writes.push_back({c, c, c + 1});
    plan.reduction_lanes.push_back(c);
  }
  return plan;
}

std::vector<OpSpec> BuildOpRegistry() {
  std::vector<OpSpec> registry;
  auto add = [&registry](const char* name, int arity,
                         std::function<Status(
                             const std::vector<const Tensor*>&, const Tensor&)>
                             infer,
                         std::function<GradcheckCase()> example) {
    OpSpec spec;
    spec.name = name;
    spec.arity = arity;
    spec.infer = std::move(infer);
    spec.example = std::move(example);
    registry.push_back(std::move(spec));
  };

  add("Add", 2, InferBinary, [] {
    return Case2("SumSq(Add(a, b))",
                 [](const Variable& a, const Variable& b) {
                   return SumSq(Add(a, b));
                 },
                 ExA23(), ExB23());
  });
  add("Sub", 2, InferBinary, [] {
    return Case2("SumSq(Sub(a, b))",
                 [](const Variable& a, const Variable& b) {
                   return SumSq(Sub(a, b));
                 },
                 ExA23(), ExB23(), /*hvp_arg=*/1);
  });
  add("Mul", 2, InferBinary, [] {
    return Case2("Sum(Mul(Mul(a, b), a))",
                 [](const Variable& a, const Variable& b) {
                   return Sum(Mul(Mul(a, b), a));
                 },
                 ExA23(), ExB23());
  });
  add("Div", 2, InferBinary, [] {
    return Case2("SumSq(Div(a, b))",
                 [](const Variable& a, const Variable& b) {
                   return SumSq(Div(a, b));
                 },
                 ExA23(), ExPos23(), /*hvp_arg=*/1);
  });
  add("Neg", 1, InferUnarySameShape, [] {
    return Case1("Sum(Mul(Neg(a), Exp(a)))",
                 [](const Variable& a) { return Sum(Mul(Neg(a), Exp(a))); },
                 ExA23());
  });
  add("ScalarMul", 1, InferUnarySameShape, [] {
    return Case1("SumSq(ScalarMul(a, 1.7))",
                 [](const Variable& a) { return SumSq(ScalarMul(a, 1.7)); },
                 ExA23());
  });
  add("AddScalar", 1, InferUnarySameShape, [] {
    return Case1("SumSq(AddScalar(a, 0.9))",
                 [](const Variable& a) { return SumSq(AddScalar(a, 0.9)); },
                 ExA23());
  });
  add("Exp", 1, InferUnarySameShape, [] {
    return Case1("Sum(Exp(a))",
                 [](const Variable& a) { return Sum(Exp(a)); }, ExA23());
  });
  add("Log", 1, InferUnarySameShape, [] {
    return Case1("Sum(Log(a))",
                 [](const Variable& a) { return Sum(Log(a)); }, ExPos23());
  });
  add("Sqrt", 1, InferUnarySameShape, [] {
    return Case1("Sum(Sqrt(a))",
                 [](const Variable& a) { return Sum(Sqrt(a)); }, ExPos23());
  });
  add("Reshape", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        if (output.size() != inputs[0]->size()) {
          return ShapeError("Reshape must preserve element count", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(Reshape(a, {3,2}))",
                     [](const Variable& a) {
                       return SumSq(Reshape(a, {3, 2}));
                     },
                     ExA23());
      });
  add("Where", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        if (!inputs[0]->SameShape(*inputs[1]) ||
            !output.SameShape(*inputs[0])) {
          return ShapeError("Where branches and output must share one shape",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(Where(mask, a, b))",
                     [](const Variable& a, const Variable& b) {
                       const Tensor mask = Tensor::FromMatrix(
                           2, 3, {1.0, 0.0, 1.0, 0.0, 1.0, 0.0});
                       return SumSq(Where(mask, a, b));
                     },
                     ExA23(), ExB23(), /*hvp_arg=*/1);
      });
  add("MatMul", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "MatMul lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "MatMul rhs"));
        if (a.dim(1) != b.dim(0) || output.rank() != 2 ||
            output.dim(0) != a.dim(0) || output.dim(1) != b.dim(1)) {
          return ShapeError("MatMul shapes must chain [n,k]x[k,m]->[n,m]",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(MatMul(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(MatMul(a, b));
                     },
                     ExA23(), ExM32());
      });
  add("MatMulNT", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "MatMulNT lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "MatMulNT rhs"));
        if (a.dim(1) != b.dim(1) || output.rank() != 2 ||
            output.dim(0) != a.dim(0) || output.dim(1) != b.dim(0)) {
          return ShapeError("MatMulNT shapes must chain [n,k]x[m,k]->[n,m]",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(MatMulNT(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(MatMulNT(a, b));
                     },
                     ExA23(), ExB23());
      });
  add("MatMulTN", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "MatMulTN lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "MatMulTN rhs"));
        if (a.dim(0) != b.dim(0) || output.rank() != 2 ||
            output.dim(0) != a.dim(1) || output.dim(1) != b.dim(1)) {
          return ShapeError("MatMulTN shapes must chain [k,n]x[k,m]->[n,m]",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(MatMulTN(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(MatMulTN(a, b));
                     },
                     ExA23(), ExB23(), /*hvp_arg=*/1);
      });
  add("Transpose", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "Transpose input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(1) ||
            output.dim(1) != a.dim(0)) {
          return ShapeError("Transpose must swap dims", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(Transpose(a))",
                     [](const Variable& a) { return SumSq(Transpose(a)); },
                     ExA23());
      });
  add("Sum", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        if (output.size() != 1 || output.rank() != 0) {
          return ShapeError("Sum output must be a scalar", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("Square(Sum(Mul(a, a)))",
                     [](const Variable& a) { return Square(Sum(Mul(a, a))); },
                     ExA23());
      });
  add("RowSum", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "RowSum input"));
        if (output.rank() != 1 || output.dim(0) != a.dim(0)) {
          return ShapeError("RowSum output must be [rows]", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(RowSum(a))",
                     [](const Variable& a) { return SumSq(RowSum(a)); },
                     ExA23());
      });
  add("TileCols", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "TileCols input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(0)) {
          return ShapeError("TileCols output must be [n, cols]", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(TileCols(a, 3))",
                     [](const Variable& a) { return SumSq(TileCols(a, 3)); },
                     ExV4());
      });
  add("ConcatCols", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "ConcatCols lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "ConcatCols rhs"));
        if (a.dim(0) != b.dim(0) || output.rank() != 2 ||
            output.dim(0) != a.dim(0) ||
            output.dim(1) != a.dim(1) + b.dim(1)) {
          return ShapeError("ConcatCols must stack columns of equal-row "
                            "matrices",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(ConcatCols(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(ConcatCols(a, b));
                     },
                     ExA23(), ExB23());
      });
  add("SliceCols", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "SliceCols input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(0) ||
            output.dim(1) > a.dim(1)) {
          return ShapeError("SliceCols output must keep rows and narrow "
                            "columns",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(SliceCols(a, 1, 3))",
                     [](const Variable& a) {
                       return SumSq(SliceCols(a, 1, 3));
                     },
                     ExA23());
      });
  add("PadCols", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "PadCols input"));
        if (output.rank() != 2 || output.dim(0) != a.dim(0) ||
            output.dim(1) < a.dim(1)) {
          return ShapeError("PadCols output must keep rows and widen columns",
                            inputs, output);
        }
        return Status::Ok();
      },
      // Only reachable as the backward of SliceCols; exercised by that op's
      // second-order check.
      nullptr);
  add("Concat1", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "Concat1 lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 1, "Concat1 rhs"));
        if (output.rank() != 1 || output.dim(0) != a.dim(0) + b.dim(0)) {
          return ShapeError("Concat1 output must be [na+nb]", inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(Concat1(a, b))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(Concat1(a, b));
                     },
                     ExV4(), ExW4(), /*hvp_arg=*/1);
      });
  add("Slice1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "Slice1 input"));
        if (output.rank() != 1 || output.dim(0) > a.dim(0)) {
          return ShapeError("Slice1 output must be a narrower vector", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(Slice1(a, 1, 4))",
                     [](const Variable& a) { return SumSq(Slice1(a, 1, 4)); },
                     ExV4());
      });
  add("Pad1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 1, "Pad1 input"));
        if (output.rank() != 1 || output.dim(0) < a.dim(0)) {
          return ShapeError("Pad1 output must be a wider vector", inputs,
                            output);
        }
        return Status::Ok();
      },
      // Only reachable as the backward of Slice1.
      nullptr);
  add("GatherRows", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "GatherRows input"));
        if (output.rank() != 2 || output.dim(1) != a.dim(1)) {
          return ShapeError("GatherRows output must keep the column count",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(GatherRows(a, {0,2,1,2}))",
                     [](const Variable& a) {
                       return SumSq(GatherRows(a, MakeIndex({0, 2, 1, 2})));
                     },
                     ExM32());
      });
  add("ScatterAddRows", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "ScatterAddRows input"));
        if (output.rank() != 2 || output.dim(1) != a.dim(1)) {
          return ShapeError("ScatterAddRows output must keep the column "
                            "count",
                            inputs, output);
        }
        return Status::Ok();
      },
      [] {
        return Case1("SumSq(ScatterAddRows(a, {2,0,2}, 4))",
                     [](const Variable& a) {
                       return SumSq(
                           ScatterAddRows(a, MakeIndex({2, 0, 2}), 4));
                     },
                     ExM32());
      });
  add("Gather1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        MSOPDS_RETURN_IF_ERROR(ExpectRank(*inputs[0], 1, "Gather1 input"));
        return ExpectRank(output, 1, "Gather1 output");
      },
      [] {
        return Case1("SumSq(Gather1(a, {3,0,0,2}))",
                     [](const Variable& a) {
                       return SumSq(Gather1(a, MakeIndex({3, 0, 0, 2})));
                     },
                     ExV4());
      });
  add("ScatterAdd1", 1,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        MSOPDS_RETURN_IF_ERROR(
            ExpectRank(*inputs[0], 1, "ScatterAdd1 input"));
        return ExpectRank(output, 1, "ScatterAdd1 output");
      },
      [] {
        return Case1("SumSq(ScatterAdd1(a, {1,1,4,0}, 5))",
                     [](const Variable& a) {
                       return SumSq(
                           ScatterAdd1(a, MakeIndex({1, 1, 4, 0}), 5));
                     },
                     ExV4());
      });
  add("SpMM", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& w = *inputs[0];
        const Tensor& x = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(w, 1, "SpMM weights"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(x, 2, "SpMM features"));
        if (output.rank() != 2 || output.dim(1) != x.dim(1)) {
          return ShapeError("SpMM output must keep the feature width", inputs,
                            output);
        }
        return Status::Ok();
      },
      [] {
        return Case2("SumSq(SpMM(dst, src, w, x, 2))",
                     [](const Variable& w, const Variable& x) {
                       return SumSq(SpMM(MakeIndex({0, 1, 1, 0}),
                                         MakeIndex({0, 1, 2, 2}), w, x, 2));
                     },
                     ExV4(), ExM32());
  });
  add("EdgeDot", 2,
      [](const std::vector<const Tensor*>& inputs, const Tensor& output) {
        const Tensor& a = *inputs[0];
        const Tensor& b = *inputs[1];
        MSOPDS_RETURN_IF_ERROR(ExpectRank(a, 2, "EdgeDot lhs"));
        MSOPDS_RETURN_IF_ERROR(ExpectRank(b, 2, "EdgeDot rhs"));
        if (a.dim(1) != b.dim(1)) {
          return ShapeError("EdgeDot operands must share the feature width",
                            inputs, output);
        }
        return ExpectRank(output, 1, "EdgeDot output");
      },
      [] {
        return Case2("SumSq(EdgeDot(a, b, ai, bi))",
                     [](const Variable& a, const Variable& b) {
                       return SumSq(EdgeDot(a, b, MakeIndex({0, 1, 1, 2}),
                                            MakeIndex({1, 0, 2, 2})));
                     },
                     ExM32(), ExM32().Clone(), /*hvp_arg=*/1);
      });

  // Kernels scheduled on the ThreadPool chunk grid (see the kernel
  // plumbing at the top of this file). Sum/Mean reduce via the pool's
  // deterministic tree fold inside Tensor::Sum.
  const std::unordered_set<std::string> parallel_kernels = {
      "Add",        "Sub",       "Mul",        "Div",
      "Neg",        "ScalarMul", "AddScalar",  "Exp",
      "Log",        "Sqrt",      "Reshape",    "Where",
      "MatMul",     "MatMulNT",  "MatMulTN",   "Transpose",
      "Sum",        "RowSum",
      "TileCols",   "ConcatCols","SliceCols",  "PadCols",
      "Concat1",    "Slice1",    "Pad1",       "GatherRows",
      "ScatterAddRows",          "Gather1",    "ScatterAdd1",
      "SpMM",       "EdgeDot"};
  for (OpSpec& spec : registry) {
    spec.parallel_kernel = parallel_kernels.count(spec.name) > 0;
  }

  // Write plans, attached post-registration like the parallel_kernel
  // flag so the add() calls above stay readable. `in` carries the
  // recorded input shapes, `out` the output shape; both have already
  // passed the op's infer check when the verifier calls the plan.
  using Shapes = std::vector<std::vector<int64_t>>;
  using Shape = std::vector<int64_t>;
  auto plan = [&registry](const std::string& name,
                          std::function<WritePlan(const Shapes&, const Shape&)>
                              write_plan,
                          PlanExample example) {
    for (OpSpec& spec : registry) {
      if (spec.name != name) continue;
      spec.write_plan = std::move(write_plan);
      spec.plan_example = [example] { return example; };
      return;
    }
    MSOPDS_CHECK(false) << "write plan for unregistered op " << name;
  };
  const auto flat = [](const Shapes&, const Shape& out) {
    return FlatPlan(out);
  };
  const auto rows = [](const Shapes&, const Shape& out) {
    return RowPlan(out);
  };
  const auto scatter_rows = [](const Shapes&, const Shape& out) {
    return RowPlan(out, /*covers=*/false);
  };
  // Elementwise / flat kernels; examples sized for a 3-chunk grid.
  const Shape kFlat = {3, kElementGrain};
  for (const char* name : {"Neg", "ScalarMul", "AddScalar", "Exp", "Log",
                           "Sqrt"}) {
    plan(name, flat, {{kFlat}, kFlat});
  }
  for (const char* name : {"Add", "Sub", "Mul", "Div", "Where"}) {
    plan(name, flat, {{kFlat, kFlat}, kFlat});
  }
  plan("Reshape", flat, {{kFlat}, {3 * kElementGrain}});
  plan("Slice1", flat, {{{20000}}, {9000}});
  plan("Gather1", flat, {{{64}}, {9000}});
  // Row-partitioned kernels writing full output rows; examples use an
  // 8-wide output so RowGrain(8) = 512 rows/chunk over 9000 rows.
  plan("MatMul", rows, {{{9000, 16}, {16, 8}}, {9000, 8}});
  plan("MatMulNT", rows, {{{9000, 16}, {8, 16}}, {9000, 8}});
  plan("MatMulTN", rows, {{{16, 9000}, {16, 8}}, {9000, 8}});
  plan("Transpose", rows, {{{8, 9000}}, {9000, 8}});
  plan("TileCols", rows, {{{9000}}, {9000, 8}});
  plan("ConcatCols", rows, {{{9000, 3}, {9000, 5}}, {9000, 8}});
  plan("SliceCols", rows, {{{9000, 16}}, {9000, 8}});
  plan("GatherRows", rows, {{{64, 8}}, {9000, 8}});
  // Reductions to one scalar per row/graph.
  plan("RowSum",
       [](const Shapes& in, const Shape& out) {
         return UnitGridPlan(out[0], RowGrain(in[0][1]), 1, out[0]);
       },
       {{{9000, 8}}, {9000}});
  plan("EdgeDot",
       [](const Shapes& in, const Shape& out) {
         return UnitGridPlan(out[0], RowGrain(in[0][1]), 1, out[0]);
       },
       {{{9000, 8}, {9000, 8}}, {9000}});
  plan("Sum",
       [](const Shapes& in, const Shape&) {
         return ReducePlan(ShapeElems(in[0]));
       },
       {{{3, kReduceGrain}}, {}});
  // Window writes into a zero-filled destination.
  plan("PadCols",
       [](const Shapes& in, const Shape& out) {
         return RowWindowPlan(out[0], in[0][1], out[1]);
       },
       {{{9000, 5}}, {9000, 8}});
  plan("Pad1",
       [](const Shapes& in, const Shape& out) {
         const int64_t w = in[0][0];
         return UnitGridPlan(w, kElementGrain, 1, out[0],
                             /*covers=*/w == out[0]);
       },
       {{{9000}}, {20000}});
  plan("Concat1",
       [](const Shapes& in, const Shape&) {
         return Concat1Plan(in[0][0], in[1][0]);
       },
       {{{5000}, {4000}}, {9000}});
  // Destination-bucketed scatters: a chunk owns a disjoint slice of
  // destination rows/elements and applies its bucket's edges in edge
  // order, so the full owned range is the (conservative) write range.
  plan("ScatterAddRows", scatter_rows, {{{64, 8}}, {9000, 8}});
  plan("SpMM", scatter_rows, {{{12}, {64, 8}}, {9000, 8}});
  plan("ScatterAdd1",
       [](const Shapes&, const Shape& out) {
         return UnitGridPlan(out[0], kElementGrain, 1, out[0],
                             /*covers=*/false);
       },
       {{{64}}, {9000}});

  // Every parallel kernel must carry a plan (the overlap pass is only as
  // strong as its coverage), and only parallel kernels may carry one.
  for (const OpSpec& spec : registry) {
    MSOPDS_CHECK(spec.parallel_kernel == (spec.write_plan != nullptr))
        << "op " << spec.name
        << (spec.parallel_kernel ? " is a parallel kernel without a write plan"
                                 : " has a write plan but no parallel kernel");
  }
  return registry;
}

}  // namespace

const std::vector<OpSpec>& OpRegistry() {
  static const std::vector<OpSpec>* const registry =
      new std::vector<OpSpec>(BuildOpRegistry());
  return *registry;
}

const OpSpec* FindOpSpec(const std::string& name) {
  for (const OpSpec& spec : OpRegistry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace msopds
