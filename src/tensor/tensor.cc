#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "tensor/simd.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

int64_t ShapeSize(const std::vector<int64_t>& shape) {
  int64_t size = 1;
  for (int64_t d : shape) {
    MSOPDS_CHECK_GE(d, 0);
    size *= d;
  }
  return size;
}

}  // namespace

Tensor::Tensor() = default;

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), size_(ShapeSize(shape_)) {
  MSOPDS_CHECK_LE(rank(), 2) << "only rank 0..2 tensors are supported";
  data_ = TensorStorage::Create(size_, /*zero=*/true);
}

Tensor Tensor::Scalar(double value) {
  Tensor t{std::vector<int64_t>{}};
  t.data_->data()[0] = value;
  return t;
}

Tensor Tensor::FromVector(std::vector<double> values) {
  Tensor t;
  t.shape_ = {static_cast<int64_t>(values.size())};
  t.size_ = static_cast<int64_t>(values.size());
  t.data_ = TensorStorage::Create(t.size_, /*zero=*/false);
  std::copy(values.begin(), values.end(), t.data_->data());
  return t;
}

Tensor Tensor::FromMatrix(int64_t rows, int64_t cols,
                          std::vector<double> values) {
  MSOPDS_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Tensor t;
  t.shape_ = {rows, cols};
  t.size_ = rows * cols;
  MSOPDS_CHECK_LE(t.rank(), 2);
  t.data_ = TensorStorage::Create(t.size_, /*zero=*/false);
  std::copy(values.begin(), values.end(), t.data_->data());
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0);
}

Tensor Tensor::Full(std::vector<int64_t> shape, double value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Clone() const {
  if (!defined()) return Tensor();
  Tensor t;
  t.shape_ = shape_;
  t.size_ = size_;
  t.data_ = TensorStorage::Create(size_, /*zero=*/false);
  if (size_ > 0) {
    std::memcpy(t.data_->data(), data_->data(),
                static_cast<size_t>(size_) * sizeof(double));
  }
  return t;
}

int64_t Tensor::dim(int64_t axis) const {
  MSOPDS_CHECK_GE(axis, 0);
  MSOPDS_CHECK_LT(axis, rank());
  return shape_[static_cast<size_t>(axis)];
}

double* Tensor::data() {
  MSOPDS_CHECK(defined());
  return data_->data();
}

const double* Tensor::data() const {
  MSOPDS_CHECK(defined());
  return data_->data();
}

double Tensor::item() const {
  MSOPDS_CHECK_EQ(size_, 1);
  return data_->data()[0];
}

double& Tensor::at(int64_t i) {
  MSOPDS_CHECK_EQ(rank(), 1);
  MSOPDS_CHECK_GE(i, 0);
  MSOPDS_CHECK_LT(i, size_);
  return data_->data()[i];
}

double Tensor::at(int64_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

double& Tensor::at(int64_t i, int64_t j) {
  MSOPDS_CHECK_EQ(rank(), 2);
  MSOPDS_CHECK_GE(i, 0);
  MSOPDS_CHECK_LT(i, shape_[0]);
  MSOPDS_CHECK_GE(j, 0);
  MSOPDS_CHECK_LT(j, shape_[1]);
  return data_->data()[i * shape_[1] + j];
}

double Tensor::at(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

void Tensor::Fill(double value) {
  MSOPDS_CHECK(defined());
  double* values = data_->data();
  for (int64_t i = 0; i < size_; ++i) values[i] = value;
}

double Tensor::Sum() const {
  if (!defined()) return 0.0;
  const double* values = data_->data();
  // Within-chunk partials use simd.h's fixed 4-lane order; the chunk
  // grid (kReduceGrain) and the pairwise fold tree are unchanged, so the
  // result is still a pure function of the values at any thread count.
  return ThreadPool::Global().ParallelReduceSum(
      size_, kReduceGrain, [values](int64_t begin, int64_t end) {
        return simd::Sum(values + begin, end - begin);
      });
}

double Tensor::MaxAbs() const {
  if (!defined()) return 0.0;
  const double* values = data_->data();
  return ThreadPool::Global().ParallelReduceMax(
      size_, kReduceGrain, 0.0, [values](int64_t begin, int64_t end) {
        return simd::MaxAbs(values + begin, end - begin);
      });
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ",";
    out << shape_[i];
  }
  out << "]{";
  if (defined()) {
    const int64_t n = std::min<int64_t>(size_, max_elements);
    for (int64_t i = 0; i < n; ++i) {
      if (i > 0) out << ", ";
      out << data_->data()[i];
    }
    if (size_ > max_elements) out << ", ...";
  }
  out << "}";
  return out.str();
}

bool AllClose(const Tensor& a, const Tensor& b, double tolerance) {
  if (!a.defined() || !b.defined()) return a.defined() == b.defined();
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a.data()[i] - b.data()[i]) > tolerance) return false;
  }
  return true;
}

}  // namespace msopds
