#ifndef MSOPDS_TENSOR_STORAGE_H_
#define MSOPDS_TENSOR_STORAGE_H_

#include <cstdint>
#include <memory>

namespace msopds {

/// Ref-counted tensor buffer backed by the slab arena (util/arena.h).
///
/// Replaces the per-tensor heap std::vector<double>: buffers are drawn
/// from (and returned to) the arena's size-class free lists, so the
/// steady-state allocation churn of training loops recycles instead of
/// hitting the system heap. Copying a Tensor shares the storage; the
/// destructor of the last reference returns the block.
///
/// The monotonic `generation` stamp lives with the buffer (shared by
/// every Tensor aliasing it) and backs the graph verifier's stale-leaf
/// detection.
class TensorStorage {
 public:
  /// A buffer of `size` doubles; zero-filled when `zero` is set (the
  /// Tensor(shape) contract), uninitialized otherwise (for callers that
  /// overwrite every element, e.g. FromVector).
  static std::shared_ptr<TensorStorage> Create(int64_t size, bool zero);

  TensorStorage(const TensorStorage&) = delete;
  TensorStorage& operator=(const TensorStorage&) = delete;
  ~TensorStorage();

  double* data() { return data_; }
  const double* data() const { return data_; }
  int64_t size() const { return size_; }

  uint64_t generation() const { return generation_; }
  void BumpGeneration() { ++generation_; }

 private:
  TensorStorage(double* data, int64_t size)
      : data_(data), size_(size) {}

  double* data_ = nullptr;
  int64_t size_ = 0;
  uint64_t generation_ = 1;
};

}  // namespace msopds

#endif  // MSOPDS_TENSOR_STORAGE_H_
