#ifndef MSOPDS_TENSOR_STORAGE_H_
#define MSOPDS_TENSOR_STORAGE_H_

#include <cstdint>
#include <memory>

namespace msopds {

/// Ref-counted tensor buffer backed by the slab arena (util/arena.h).
///
/// Replaces the per-tensor heap std::vector<double>: buffers are drawn
/// from (and returned to) the arena's size-class free lists, so the
/// steady-state allocation churn of training loops recycles instead of
/// hitting the system heap. Copying a Tensor shares the storage; the
/// destructor of the last reference returns the block.
///
/// The monotonic `generation` stamp lives with the buffer (shared by
/// every Tensor aliasing it) and backs the graph verifier's stale-leaf
/// detection.
class TensorStorage {
 public:
  /// Thread-local allocation interception used by the tape compiler
  /// (tensor/compile.h). While a hook is installed on a thread, every
  /// Create() on that thread consults it first:
  ///
  ///  * recording: OnCreate returns nullptr and assigns `*slot` (>= 0);
  ///    the buffer is drawn from the arena as usual, and the slot id is
  ///    reported back to OnDestroy when this storage dies — while the
  ///    same hook installation is still current on this thread. Frees
  ///    observed after the hook is gone are simply unrecorded (the
  ///    compiler treats those buffers as live to the end of the tape,
  ///    which is conservative and safe).
  ///
  ///  * planned replay: OnCreate returns a pointer into pre-planned
  ///    memory and sets `*keepalive` to whatever owns it; the storage
  ///    then never touches the arena (the keepalive reference keeps the
  ///    plan's slab alive for as long as any replayed tensor aliases it).
  class AllocHook {
   public:
    virtual ~AllocHook() = default;
    virtual double* OnCreate(int64_t size, int64_t* slot,
                             std::shared_ptr<void>* keepalive) = 0;
    virtual void OnDestroy(int64_t slot) = 0;
  };

  /// Installs `hook` for the calling thread (nullptr uninstalls) and
  /// returns the previously installed hook.
  static AllocHook* SetThreadAllocHook(AllocHook* hook);

  /// A buffer of `size` doubles; zero-filled when `zero` is set (the
  /// Tensor(shape) contract), uninitialized otherwise (for callers that
  /// overwrite every element, e.g. FromVector).
  static std::shared_ptr<TensorStorage> Create(int64_t size, bool zero);

  TensorStorage(const TensorStorage&) = delete;
  TensorStorage& operator=(const TensorStorage&) = delete;
  ~TensorStorage();

  double* data() { return data_; }
  const double* data() const { return data_; }
  int64_t size() const { return size_; }

  uint64_t generation() const { return generation_; }
  void BumpGeneration() { ++generation_; }

 private:
  TensorStorage(double* data, int64_t size)
      : data_(data), size_(size) {}

  double* data_ = nullptr;
  int64_t size_ = 0;
  uint64_t generation_ = 1;
  // Planned-replay buffers: owns a reference to the plan's slab instead
  // of an arena block. Null for ordinary arena-backed storage.
  std::shared_ptr<void> keepalive_;
  // Recording bookkeeping: the hook slot to report to OnDestroy, valid
  // only while the installation stamped in hook_epoch_ is still current.
  int64_t hook_slot_ = -1;
  uint64_t hook_epoch_ = 0;
};

}  // namespace msopds

#endif  // MSOPDS_TENSOR_STORAGE_H_
