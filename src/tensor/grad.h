#ifndef MSOPDS_TENSOR_GRAD_H_
#define MSOPDS_TENSOR_GRAD_H_

#include <vector>

#include "tensor/ops.h"
#include "tensor/variable.h"

namespace msopds {

/// Reverse-mode gradients of `output` w.r.t. each of `inputs`.
///
/// `grad_output` seeds the backward pass (defaults to all-ones of the
/// output's shape). The returned gradients are Variables whose own graphs
/// reference `inputs`, so calling Grad on them again yields exact
/// higher-order derivatives (the mechanism behind the Hessian-vector
/// products in MSO). Inputs that the output does not depend on receive a
/// zero gradient of the input's shape.
std::vector<Variable> Grad(const Variable& output,
                           const std::vector<Variable>& inputs,
                           const Variable& grad_output = Variable());

/// Convenience: detached gradient tensors (first-order only).
std::vector<Tensor> GradValues(const Variable& output,
                               const std::vector<Variable>& inputs,
                               const Variable& grad_output = Variable());

/// Hessian-vector product: d/d(input) [ <Grad(output, input), v> ].
/// `grad` must be the (graph-carrying) gradient of a scalar output w.r.t.
/// `input`, as returned by Grad(). Exact (double backward), not a finite
/// difference.
Tensor HessianVectorProduct(const Variable& grad, const Variable& input,
                            const Tensor& v);

/// Mixed second-order vector-Jacobian product:
/// returns xi^T * d(grad)/d(other), i.e. d/d(other) [ <grad, xi> ].
/// Used for the xi * d^2 L^q / (dX^p dX^q) term of paper Eq. (13).
Tensor MixedVectorJacobian(const Variable& grad, const Variable& other,
                           const Tensor& xi);

}  // namespace msopds

#endif  // MSOPDS_TENSOR_GRAD_H_
