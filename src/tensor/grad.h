#ifndef MSOPDS_TENSOR_GRAD_H_
#define MSOPDS_TENSOR_GRAD_H_

#include <vector>

#include "tensor/ops.h"
#include "tensor/variable.h"

namespace msopds {

/// Options controlling the backward walk in Grad() / GradValues().
struct GradOptions {
  /// When true (default), gradients are recorded Variables whose own
  /// graphs reference `inputs`, so they can be differentiated again
  /// (exact Hessian-vector products). When false the walk runs in value
  /// mode: gradients accumulate into plain Tensors — in place when the
  /// buffer refcount shows no aliases — and each node's accumulator is
  /// released back to the arena as soon as the node fires. Value-mode
  /// results carry the same bits as the values of graph-mode gradients;
  /// only first-order information is available (Grad() wraps them as
  /// graph-less Constants).
  bool create_graph = true;

  /// Optional initial accumulators, parallel to `inputs`: input i's
  /// gradient fold starts from init_grads[i] instead of empty (undefined
  /// tensors mean no seed). Used by the checkpointing driver
  /// (tensor/remat.h) to chain a shared leaf's gradient across tape
  /// segments so the segmented fold reproduces the full-tape fold
  /// bit-for-bit. Entries for inputs without requires_grad are ignored.
  std::vector<Tensor> init_grads;
};

/// Reverse-mode gradients of `output` w.r.t. each of `inputs`.
///
/// `grad_output` seeds the backward pass (defaults to all-ones of the
/// output's shape). The returned gradients are Variables whose own graphs
/// reference `inputs`, so calling Grad on them again yields exact
/// higher-order derivatives (the mechanism behind the Hessian-vector
/// products in MSO). Inputs that the output does not depend on receive a
/// zero gradient of the input's shape.
///
/// The backward walk fires nodes in decreasing Node::seq order (a
/// max-heap over creation order), which is one canonical
/// reverse-topological order: gradient accumulation folds identically no
/// matter how the graph was built or partitioned. tensor/remat.h depends
/// on this for bit-identical gradient checkpointing.
std::vector<Variable> Grad(const Variable& output,
                           const std::vector<Variable>& inputs,
                           const Variable& grad_output = Variable(),
                           const GradOptions& options = GradOptions());

/// Detached gradient tensors (first-order only). Runs the value-mode
/// walk directly: no gradient graph is recorded, accumulation is
/// in-place where refcounts allow, and tape-walk temporaries go back to
/// the arena eagerly. Bit-identical to calling Grad() and reading each
/// gradient's value.
std::vector<Tensor> GradValues(const Variable& output,
                               const std::vector<Variable>& inputs,
                               const Variable& grad_output = Variable(),
                               std::vector<Tensor> init_grads = {});

/// Hessian-vector product: d/d(input) [ <Grad(output, input), v> ].
/// `grad` must be the (graph-carrying) gradient of a scalar output w.r.t.
/// `input`, as returned by Grad(). Exact (double backward), not a finite
/// difference.
Tensor HessianVectorProduct(const Variable& grad, const Variable& input,
                            const Tensor& v);

/// Mixed second-order vector-Jacobian product:
/// returns xi^T * d(grad)/d(other), i.e. d/d(other) [ <grad, xi> ].
/// Used for the xi * d^2 L^q / (dX^p dX^q) term of paper Eq. (13).
Tensor MixedVectorJacobian(const Variable& grad, const Variable& other,
                           const Tensor& xi);

}  // namespace msopds

#endif  // MSOPDS_TENSOR_GRAD_H_
