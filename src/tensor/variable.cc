#include "tensor/variable.h"

#include <utility>

#include "util/logging.h"

namespace msopds {

Variable::Variable() = default;

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  MSOPDS_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  MSOPDS_CHECK(defined());
  MSOPDS_CHECK(is_leaf()) << "mutable_value() on derived node "
                          << node_->op_name;
  return node_->value;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

bool Variable::is_leaf() const {
  MSOPDS_CHECK(defined());
  return !node_->backward;
}

const char* Variable::op_name() const {
  MSOPDS_CHECK(defined());
  return node_->op_name;
}

Variable Variable::Detach() const {
  MSOPDS_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable ConstantScalar(double value) {
  return Constant(Tensor::Scalar(value));
}

Variable Param(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/true);
}

}  // namespace msopds
