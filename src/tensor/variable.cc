#include "tensor/variable.h"

#include <atomic>
#include <utility>

#include "util/logging.h"

namespace msopds {
namespace internal {
namespace {

std::atomic<uint64_t> g_node_seq{0};

bool g_grad_recording = false;

#ifndef NDEBUG
bool g_leaf_mutation_guard = true;
#else
bool g_leaf_mutation_guard = false;
#endif

}  // namespace

Node::Node() : seq(g_node_seq.fetch_add(1, std::memory_order_relaxed) + 1) {}

Node::~Node() {
  for (const Variable& input : inputs) {
    Node* in = input.node().get();
    if (in == nullptr) continue;
    --in->live_consumers;
    if (in_grad_graph) --in->live_grad_consumers;
  }
}

void AttachInputs(Node* node, std::vector<Variable> inputs) {
  node->inputs = std::move(inputs);
  node->in_grad_graph = GradRecordingActive();
  node->input_generations.reserve(node->inputs.size());
  for (const Variable& input : node->inputs) {
    Node* in = input.node().get();
    node->input_generations.push_back(in ? in->value.generation() : 0);
    if (in == nullptr) continue;
    ++in->live_consumers;
    if (node->in_grad_graph) ++in->live_grad_consumers;
  }
}

bool GradRecordingActive() { return g_grad_recording; }

ScopedGradRecording::ScopedGradRecording() : previous_(g_grad_recording) {
  g_grad_recording = true;
}

ScopedGradRecording::~ScopedGradRecording() { g_grad_recording = previous_; }

bool LeafMutationGuardEnabled() { return g_leaf_mutation_guard; }

bool SetLeafMutationGuard(bool enabled) {
  const bool previous = g_leaf_mutation_guard;
  g_leaf_mutation_guard = enabled;
  return previous;
}

}  // namespace internal

Variable::Variable() = default;

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  MSOPDS_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  MSOPDS_CHECK(defined());
  MSOPDS_CHECK(is_leaf()) << "mutable_value() on derived node "
                          << node_->op_name;
  if (internal::LeafMutationGuardEnabled()) {
    MSOPDS_CHECK_EQ(node_->live_grad_consumers, 0)
        << "mutable_value() on a leaf still referenced by a live gradient "
           "graph from a previous Grad() call; re-differentiating that graph "
           "would use stale values. Drop the gradient Variables before "
           "stepping the optimizer.";
  }
  node_->value.BumpGeneration();
  return node_->value;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

bool Variable::is_leaf() const {
  MSOPDS_CHECK(defined());
  return !node_->backward;
}

const char* Variable::op_name() const {
  MSOPDS_CHECK(defined());
  return node_->op_name;
}

Variable Variable::Detach() const {
  MSOPDS_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Constant(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable ConstantScalar(double value) {
  return Constant(Tensor::Scalar(value));
}

Variable Param(Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/true);
}

}  // namespace msopds
