#include "tensor/gradcheck.h"

#include <cmath>

#include "util/logging.h"

namespace msopds {
namespace {

std::vector<Variable> MakeParams(const std::vector<Tensor>& points) {
  std::vector<Variable> params;
  params.reserve(points.size());
  for (const Tensor& p : points) params.push_back(Param(p.Clone()));
  return params;
}

double EvalAt(const ScalarFn& fn, const std::vector<Tensor>& points) {
  std::vector<Variable> params = MakeParams(points);
  return fn(params).value().item();
}

std::vector<Tensor> AnalyticGradients(const ScalarFn& fn,
                                      const std::vector<Tensor>& points) {
  std::vector<Variable> params = MakeParams(points);
  Variable out = fn(params);
  MSOPDS_CHECK_EQ(out.value().size(), 1) << "gradcheck needs a scalar output";
  return GradValues(out, params);
}

}  // namespace

double MaxGradError(const ScalarFn& fn, const std::vector<Tensor>& points,
                    double epsilon) {
  const std::vector<Tensor> analytic = AnalyticGradients(fn, points);
  double max_error = 0.0;
  for (size_t a = 0; a < points.size(); ++a) {
    for (int64_t i = 0; i < points[a].size(); ++i) {
      std::vector<Tensor> plus;
      std::vector<Tensor> minus;
      for (const Tensor& p : points) {
        plus.push_back(p.Clone());
        minus.push_back(p.Clone());
      }
      plus[a].data()[i] += epsilon;
      minus[a].data()[i] -= epsilon;
      const double numeric =
          (EvalAt(fn, plus) - EvalAt(fn, minus)) / (2.0 * epsilon);
      max_error =
          std::max(max_error, std::fabs(numeric - analytic[a].data()[i]));
    }
  }
  return max_error;
}

double MaxHvpError(const ScalarFn& fn, const std::vector<Tensor>& points,
                   size_t arg, const Tensor& v, double epsilon) {
  MSOPDS_CHECK_LT(arg, points.size());
  MSOPDS_CHECK(v.SameShape(points[arg]));

  // Exact HVP via double backward.
  std::vector<Variable> params = MakeParams(points);
  Variable out = fn(params);
  Variable grad = Grad(out, {params[arg]})[0];
  const Tensor exact = HessianVectorProduct(grad, params[arg], v);

  // Finite difference of analytic first-order gradients along v.
  std::vector<Tensor> plus;
  std::vector<Tensor> minus;
  for (const Tensor& p : points) {
    plus.push_back(p.Clone());
    minus.push_back(p.Clone());
  }
  for (int64_t i = 0; i < v.size(); ++i) {
    plus[arg].data()[i] += epsilon * v.data()[i];
    minus[arg].data()[i] -= epsilon * v.data()[i];
  }
  const Tensor grad_plus = AnalyticGradients(fn, plus)[arg];
  const Tensor grad_minus = AnalyticGradients(fn, minus)[arg];

  double max_error = 0.0;
  for (int64_t i = 0; i < exact.size(); ++i) {
    const double numeric =
        (grad_plus.data()[i] - grad_minus.data()[i]) / (2.0 * epsilon);
    max_error = std::max(max_error, std::fabs(numeric - exact.data()[i]));
  }
  return max_error;
}

}  // namespace msopds
