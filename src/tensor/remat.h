#ifndef MSOPDS_TENSOR_REMAT_H_
#define MSOPDS_TENSOR_REMAT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/grad.h"
#include "tensor/variable.h"

namespace msopds {

/// Gradient checkpointing (rematerialization) for unrolled inner loops.
///
/// An unrolled optimization — the surrogate SGD loop of the PDS planner,
/// the functional MF steps of the unrolled-surrogate attack — builds a
/// tape whose size grows linearly with the number of steps, because every
/// intermediate of every step stays alive until the backward pass
/// consumes it. CheckpointedUnrollGrad() trades compute for memory: the
/// forward pass keeps only the state at every `checkpoint_every`-th step
/// boundary (dropping each step's tape immediately), then the backward
/// pass rematerializes one segment at a time, so peak tape size is one
/// segment plus the checkpoints.
///
/// Bit-identity. The result is bit-for-bit the gradient the full tape
/// would produce, at any thread count. Two mechanisms make this hold:
/// (1) Grad() fires nodes in canonical decreasing-creation-order (see
/// Node::seq), so a segment's internal gradient fold equals the
/// corresponding stretch of the full walk; (2) boundary adjoints enter a
/// segment through Dot(state, Constant(adjoint)) roots — whose backward
/// delivers the adjoint multiplied by 1.0, exact in IEEE arithmetic —
/// and shared-leaf gradients are chained across segments through
/// GradOptions-style initial accumulators, reproducing the full walk's
/// left fold one contribution at a time.
///
/// Contract on the callbacks: `step` and `loss` must build their ops
/// from the state Variables they are handed plus *leaf* Variables only
/// (the `inputs` params, constants). A derived Variable computed once
/// outside the loop and captured by the closure would be a shared
/// interior node; its backward would collapse per-segment partial sums
/// and break bit-identity. Rebuild such values inside the callback.
///
/// Caveat: a state component that receives no adjoint at a boundary is
/// reseeded with exact zeros rather than skipped; this is arithmetically
/// neutral except for the sign of a -0.0 accumulator. Both surrogate
/// losses regularize every parameter, so every component receives a real
/// adjoint in practice.
struct CheckpointedGradResult {
  /// d(loss)/d(inputs[i]), parallel to `inputs`.
  std::vector<Tensor> input_grads;
  /// d(loss)/d(initial_state[i]), parallel to `initial_state`.
  std::vector<Tensor> state_grads;
  /// Terminal loss value.
  Tensor loss;
  /// Detached state values after the final step.
  std::vector<Tensor> final_state;
  /// Number of backward segments run (1 when checkpointing is off).
  int64_t segments = 0;
};

/// Maps (state at step t, t) to the state at step t+1.
using UnrollStepFn = std::function<std::vector<Variable>(
    const std::vector<Variable>& state, int64_t step)>;

/// Maps the final state to the scalar terminal loss.
using UnrollLossFn =
    std::function<Variable(const std::vector<Variable>& state)>;

/// Runs `num_steps` of `step` from `initial_state`, applies `loss`, and
/// returns first-order gradients w.r.t. `inputs` (shared leaves captured
/// by the callbacks) and the initial state.
///
/// `checkpoint_every` <= 0 (or >= num_steps) disables segmentation: one
/// full tape, one backward walk. Gradients are identical either way.
CheckpointedGradResult CheckpointedUnrollGrad(
    const std::vector<Tensor>& initial_state,
    const std::vector<Variable>& inputs, int64_t num_steps,
    int64_t checkpoint_every, const UnrollStepFn& step,
    const UnrollLossFn& loss);

}  // namespace msopds

#endif  // MSOPDS_TENSOR_REMAT_H_
