#ifndef MSOPDS_TENSOR_VERIFY_H_
#define MSOPDS_TENSOR_VERIFY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "tensor/gradcheck.h"
#include "tensor/variable.h"
#include "util/status.h"

namespace msopds {

// ---------------------------------------------------------------------------
// Per-op shape-inference registry. Every primitive recorded by ops.cc has an
// OpSpec describing its arity, a consistency check of the recorded output
// value against the recorded input values, and (for most ops) a small
// deterministic gradcheck example. The registry is the ground truth the
// GraphVerifier checks recorded graphs against, and the op inventory that
// tools/verify_graph exhaustively gradchecks.
// ---------------------------------------------------------------------------

/// A deterministic scalar-valued test point exercising one op, suitable for
/// MaxGradError / MaxHvpError.
struct GradcheckCase {
  std::string description;
  ScalarFn fn;
  std::vector<Tensor> points;
  /// Argument index to probe with the Hessian-vector product check.
  size_t hvp_arg = 0;
};

/// One chunk's destination range in flat output elements: chunk `chunk`
/// writes (only) into [begin, end). Row-strided kernels that write a
/// sub-span of each row (PadCols) report the bounding interval of their
/// rows, which is still disjoint across chunks because the span width
/// never exceeds the row stride.
struct ChunkWrite {
  int64_t chunk = 0;
  int64_t begin = 0;
  int64_t end = 0;
};

/// Static description of a parallel kernel's writes over the ThreadPool
/// chunk grid. A pure function of input/output *shapes* — never of data,
/// the thread count, or scheduling — which is exactly why the overlap
/// check can run at verification time without executing the kernel.
struct WritePlan {
  /// ParallelFor total / grain; num_chunks == NumChunks(units, grain).
  int64_t units = 0;
  int64_t grain = 0;
  int64_t num_chunks = 0;
  /// Flat element count of the destination buffer the chunks write into
  /// (the op output, or the partial-sum buffer for reductions).
  int64_t output_elems = 0;
  /// Sequential ParallelFor launches the kernel makes (Concat1 runs one
  /// grid per operand). Chunk ids are renumbered consecutively across
  /// grids; the units/grain arithmetic check applies only when 1.
  /// Overlap is still rejected across grids — stricter than racing
  /// requires (sequential grids cannot race), but true of every kernel.
  int64_t grids = 1;
  /// Exactly one entry per chunk. VerifyWritePlan checks the ranges are
  /// in-bounds and pairwise disjoint.
  std::vector<ChunkWrite> writes;
  /// True when the union of writes must tile [0, output_elems) exactly
  /// (kernels that fully overwrite their destination). False for
  /// window/pad/scatter kernels that write a subset of a zero-filled
  /// destination.
  bool covers_output = true;
  /// True for reduction kernels (Sum): chunks write per-chunk partial
  /// slots that a fixed pairwise tree later combines in lane order.
  bool reduction = false;
  /// Order the reduction combines partial slots in; determinism requires
  /// the identity permutation 0..num_chunks-1 (the tree shape is then
  /// fixed by num_chunks alone).
  std::vector<int64_t> reduction_lanes;
};

/// Deterministic input/output shapes that exercise an op's write plan
/// with a multi-chunk grid, for registry-wide sweeps (tools/verify_graph
/// --overlap-only) where no recorded node supplies shapes.
struct PlanExample {
  std::vector<std::vector<int64_t>> input_shapes;
  std::vector<int64_t> output_shape;
};

struct OpSpec {
  std::string name;
  /// Expected number of *recorded* inputs (constants captured in the
  /// backward closure, e.g. Where's mask or Gather's indices, don't count).
  int arity = 0;
  /// Validates the recorded output tensor against the recorded inputs.
  /// Returns InvalidArgument with a human-readable message on mismatch.
  /// Attribute-dependent dimensions (slice bounds, scatter sizes) are
  /// checked as inequalities since the attributes live in closures.
  std::function<Status(const std::vector<const Tensor*>& inputs,
                       const Tensor& output)>
      infer;
  /// Builds a gradcheck case exercising this op, or null for ops that are
  /// only reachable as the backward of another registered op (Pad1,
  /// PadCols) and are exercised through that op's second-order check.
  std::function<GradcheckCase()> example;
  /// True when the op's kernel runs on the ThreadPool chunk grid (all of
  /// them currently do, via elementwise, row-partitioned, or
  /// destination-bucketed scheduling). Surfaces in GraphStats so
  /// verify_graph can report how much of a recorded graph parallelizes.
  bool parallel_kernel = false;
  /// Rebuilds the kernel's chunk grid and per-chunk write ranges from
  /// shapes (mirroring the grain constants in ops.cc). Null only for ops
  /// without a parallel kernel. Offset attributes hidden in closures
  /// (slice/pad lo) are taken as 0 — they shift every chunk's range by
  /// the same amount and cannot introduce an overlap.
  std::function<WritePlan(
      const std::vector<std::vector<int64_t>>& input_shapes,
      const std::vector<int64_t>& output_shape)>
      write_plan;
  /// Shapes for a registry-wide sweep of write_plan; chosen so the grid
  /// has several chunks (a one-chunk grid checks nothing).
  std::function<PlanExample()> plan_example;
};

/// Checks the determinism invariants of one write plan: grid arithmetic
/// consistent (num_chunks == NumChunks(units, grain)), exactly one write
/// range per chunk, all ranges in-bounds and pairwise disjoint, exact
/// coverage of [0, output_elems) when covers_output, and identity lane
/// order for reductions. Returns InvalidArgument naming the earliest
/// offending chunk pair on violation.
Status VerifyWritePlan(const std::string& op_name, const WritePlan& plan);

/// All registered primitive ops, in registration order. Defined in ops.cc
/// next to the kernels it describes.
const std::vector<OpSpec>& OpRegistry();

/// Registry lookup by op name; nullptr if unknown.
const OpSpec* FindOpSpec(const std::string& name);

// ---------------------------------------------------------------------------
// Graph verification.
// ---------------------------------------------------------------------------

enum class DiagSeverity { kWarning = 0, kError = 1 };

/// One finding from a verification pass. `node` identifies the offending
/// node for DOT highlighting and is not owned (valid only while the
/// verified graph is alive).
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  const internal::Node* node = nullptr;
  const char* op_name = "leaf";
  std::string message;
};

std::string DiagnosticToString(const Diagnostic& diagnostic);

/// Node/byte accounting for a recorded graph.
struct GraphStats {
  int64_t num_nodes = 0;
  int64_t num_leaves = 0;     // nodes with no recorded inputs
  int64_t num_params = 0;     // leaves with requires_grad
  int64_t num_edges = 0;
  int64_t value_bytes = 0;    // payload bytes across unique node tensors
  /// Payload bytes across unique *buffers* (tensors sharing storage via
  /// copies or views are counted once): the graph's actual arena
  /// footprint.
  int64_t live_bytes = 0;
  /// The subset of live_bytes held by interior (non-leaf) nodes — the
  /// bytes a first-order backward pass releases back to the arena once
  /// the graph handle is dropped; leaves (params, constants) typically
  /// outlive the tape.
  int64_t releasable_bytes = 0;
  int64_t max_depth = 0;      // longest input chain, leaves at depth 1
  /// Recorded non-leaf nodes whose OpSpec has parallel_kernel set.
  int64_t num_parallel_kernel_nodes = 0;
  /// Nodes whose write plan was rebuilt and overlap-checked, and the
  /// total chunk count across those plans (the number of disjointness
  /// obligations discharged).
  int64_t num_write_planned_nodes = 0;
  int64_t num_planned_chunks = 0;
  std::map<std::string, int64_t> op_counts;
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;
  GraphStats stats;

  bool ok() const { return num_errors() == 0; }
  int num_errors() const;
  int num_warnings() const;
  /// All diagnostics, one per line.
  std::string Report() const;
};

/// Walks a recorded autodiff DAG without executing it and checks structural
/// invariants against the op registry:
///   - per-node shape consistency (output vs inputs, via OpSpec::infer),
///   - requires_grad propagation soundness (a recorded node requires grad
///     iff one of its inputs does; interior requires-grad nodes must carry
///     a backward),
///   - cycle detection (a cycle would both break backprop's topological
///     schedule and leak the ref-counted graph),
///   - stale-input hazards (an input tensor whose generation changed after
///     the node recorded it, e.g. a leaf mutated by mutable_value()),
///   - node/byte accounting (GraphStats).
/// The two-argument overload additionally flags requested gradient inputs
/// that are detached from `root` (not reachable, or not requiring grad):
/// Grad() returns zeros for those, which is almost always a wiring bug.
class GraphVerifier {
 public:
  struct Options {
    bool check_shapes = true;
    bool check_requires_grad = true;
    bool check_cycles = true;
    bool check_stale_inputs = true;
    /// Rebuild each registered node's chunk-grid write plan from its
    /// recorded shapes and reject overlapping destination ranges or
    /// unordered reduction lanes (runs only after the shape check
    /// passes, so plans see consistent shapes).
    bool check_write_overlap = true;
    /// Emit a warning for recorded ops missing from the registry.
    bool warn_unknown_ops = true;
  };

  GraphVerifier() = default;
  explicit GraphVerifier(const Options& options) : options_(options) {}

  VerifyResult Verify(const Variable& root) const;
  VerifyResult Verify(const Variable& root,
                      const std::vector<Variable>& inputs) const;

 private:
  Options options_;
};

/// Convenience: default-option verification of one graph.
VerifyResult VerifyGraph(const Variable& root);

/// Graphviz DOT rendering of the graph under `root`. Nodes named by op and
/// shape; params are boxes; nodes mentioned in `diagnostics` are filled red
/// (errors) or orange (warnings) with the message in the tooltip.
std::string GraphToDot(const Variable& root,
                       const std::vector<Diagnostic>& diagnostics = {});

namespace internal {

/// Auto-verification runs VerifyGraph on the output inside every top-level
/// Grad() call and CHECK-fails on error diagnostics. Defaults to on in
/// Debug builds, off in Release (compiled out of the hot path). The setter
/// returns the previous value so tests can restore it.
bool AutoVerifyEnabled();
bool SetAutoVerify(bool enabled);

/// Test-only: records a node with arbitrary value/inputs/op_name, bypassing
/// the kernels' shape checks, so tests can hand the verifier deliberately
/// malformed graphs. Consumer/generation bookkeeping is still performed.
Variable MakeTestNode(const char* op_name, Tensor value,
                      std::vector<Variable> inputs, bool requires_grad);

}  // namespace internal

}  // namespace msopds

#endif  // MSOPDS_TENSOR_VERIFY_H_
