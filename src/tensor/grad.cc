#include "tensor/grad.h"

#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "tensor/simd.h"
#include "tensor/verify.h"
#include "util/logging.h"

namespace msopds {
namespace {

using internal::Node;

// Collects the set of requires-grad nodes reachable from `root` and the
// number of requires-grad consumers of each (within that set).
void CollectReachable(Node* root,
                      std::unordered_map<Node*, int>* pending_consumers) {
  std::vector<Node*> stack;
  stack.reserve(64);
  stack.push_back(root);
  pending_consumers->reserve(256);
  (*pending_consumers)[root] = 0;
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (const Variable& input : node->inputs) {
      Node* in = input.node().get();
      if (in == nullptr || !in->requires_grad) continue;
      auto [it, inserted] = pending_consumers->emplace(in, 0);
      ++it->second;
      if (inserted) stack.push_back(in);
    }
  }
}

// One gradient accumulator; exactly one member is populated, selected by
// GradOptions::create_graph.
struct Accum {
  Variable graph;
  Tensor value;
};

// acc[i] += g[i], elementwise. Bit-identical to the Add op's kernel for
// equal-shape operands; clones first when the buffer is aliased (e.g. the
// caller's init_grads, or an op backward that passed its grad through).
void AddInPlace(Tensor* acc, const Tensor& g) {
  MSOPDS_CHECK(acc->SameShape(g));
  if (!acc->sole_buffer_owner()) *acc = acc->Clone();
  simd::AddInPlace(acc->data(), g.data(), acc->size());
}

struct BackwardOutputs {
  std::vector<Variable> graphs;  // create_graph mode
  std::vector<Tensor> values;    // value mode
};

// The shared reverse-mode walk behind Grad() and GradValues().
//
// Ready nodes are fired from a max-heap on Node::seq. Since inputs are
// always created before their consumers, seq order is topological, and
// max-seq-first firing visits nodes in one canonical reverse order that
// does not depend on how (or in how many segments) the tape was built.
// The gradient fold — the order contributions are added into each node's
// accumulator — is therefore canonical too, which is what lets
// tensor/remat.cc replay the tape segment by segment bit-identically.
BackwardOutputs WalkBackward(const Variable& output,
                             const std::vector<Variable>& inputs,
                             const Variable& grad_output, bool create_graph,
                             const std::vector<Tensor>& init_grads) {
  MSOPDS_CHECK(output.defined());
  MSOPDS_CHECK(output.requires_grad())
      << "Grad() of an output that does not require grad";
  if (!init_grads.empty()) {
    MSOPDS_CHECK_EQ(init_grads.size(), inputs.size())
        << "init_grads must parallel inputs";
  }

  // Debug builds statically verify the recorded graph before walking it, so
  // a malformed graph fails loudly here instead of corrupting gradients.
  if (internal::AutoVerifyEnabled() && !internal::GradRecordingActive()) {
    const VerifyResult verification = VerifyGraph(output);
    MSOPDS_CHECK(verification.ok())
        << "autodiff graph failed verification before Grad():\n"
        << verification.Report()
        << "(use GraphToDot() on the output to visualize the failing graph)";
  }
  // Ops recorded while building the backward graph are tagged as gradient
  // consumers of their inputs; mutable_value() guards against mutating
  // leaves those live gradient graphs still reference. Value mode records
  // (and immediately drops) the same ops, so the tags balance out by the
  // time the walk returns.
  internal::ScopedGradRecording recording;

  std::unordered_map<Node*, int> pending;
  CollectReachable(output.node().get(), &pending);

  std::unordered_map<Node*, Accum> accumulated;
  accumulated.reserve(pending.size());

  auto accumulate = [&](Node* node, const Variable& graph_grad,
                        const Tensor& value_grad) {
    auto [it, inserted] = accumulated.try_emplace(node);
    if (create_graph) {
      if (it->second.graph.defined()) {
        it->second.graph = Add(it->second.graph, graph_grad);
      } else {
        it->second.graph = graph_grad;
      }
    } else {
      if (it->second.value.defined()) {
        AddInPlace(&it->second.value, value_grad);
      } else {
        it->second.value = value_grad;
      }
    }
  };

  // Pre-seed the checkpointing driver's cross-segment accumulators: the
  // first in-segment contribution then folds as Add(init, contribution),
  // exactly where the full-tape walk would be in its fold.
  for (size_t i = 0; i < init_grads.size(); ++i) {
    if (!init_grads[i].defined() || !inputs[i].requires_grad()) continue;
    MSOPDS_CHECK(init_grads[i].SameShape(inputs[i].value()))
        << "init_grads[" << i << "] shape mismatch";
    accumulate(inputs[i].node().get(),
               create_graph ? Constant(init_grads[i]) : Variable(),
               init_grads[i]);
  }

  {
    const Tensor seed_value = grad_output.defined()
                                  ? grad_output.value()
                                  : Tensor::Ones(output.value().shape());
    MSOPDS_CHECK(seed_value.SameShape(output.value()))
        << "grad_output shape mismatch";
    Variable seed_graph;
    if (create_graph) {
      seed_graph = grad_output.defined() ? grad_output : Constant(seed_value);
    }
    accumulate(output.node().get(), seed_graph, seed_value);
  }

  std::unordered_set<Node*> requested;
  requested.reserve(inputs.size());
  for (const Variable& input : inputs) {
    MSOPDS_CHECK(input.defined());
    requested.insert(input.node().get());
  }

  // Max-heap on seq; seqs are unique so the order is total.
  std::priority_queue<std::pair<uint64_t, Node*>> ready;
  ready.emplace(output.node()->seq, output.node().get());
  while (!ready.empty()) {
    Node* node = ready.top().second;
    ready.pop();
    auto acc_it = accumulated.find(node);
    MSOPDS_CHECK(acc_it != accumulated.end());
    Accum grad = std::move(acc_it->second);
    // Liveness: a fired node receives no further contributions (its
    // pending count reached zero), so its accumulator is dead unless the
    // caller asked for it. Erasing here returns value-mode buffers to the
    // arena as soon as each node retires.
    if (requested.count(node) == 0) {
      accumulated.erase(acc_it);
    } else {
      acc_it->second = grad;
    }
    if (!node->backward) continue;  // leaf
    const Variable grad_var =
        create_graph ? grad.graph : Constant(grad.value);
    const std::vector<Variable> input_grads =
        node->backward(grad_var, node->inputs);
    MSOPDS_CHECK_EQ(input_grads.size(), node->inputs.size())
        << "op " << node->op_name;
    for (size_t i = 0; i < node->inputs.size(); ++i) {
      Node* in = node->inputs[i].node().get();
      if (in == nullptr || !in->requires_grad) continue;
      const Variable& ig = input_grads[i];
      if (ig.defined()) {
        MSOPDS_CHECK(ig.value().SameShape(in->value))
            << "gradient shape mismatch for input " << i << " of op "
            << node->op_name << ": " << ig.value().DebugString(2) << " vs "
            << in->value.DebugString(2);
        accumulate(in, ig, ig.value());
      }
      auto pit = pending.find(in);
      MSOPDS_CHECK(pit != pending.end());
      if (--pit->second == 0) {
        // Only schedule nodes that actually received gradient; nodes with
        // no accumulated grad contribute nothing downstream.
        if (accumulated.count(in) > 0) ready.emplace(in->seq, in);
      }
    }
  }

  BackwardOutputs outputs;
  if (create_graph) {
    outputs.graphs.reserve(inputs.size());
  } else {
    outputs.values.reserve(inputs.size());
  }
  for (const Variable& input : inputs) {
    auto it = accumulated.find(input.node().get());
    const bool found = it != accumulated.end() && input.requires_grad();
    if (create_graph) {
      outputs.graphs.push_back(
          found ? it->second.graph
                : Constant(Tensor::Zeros(input.value().shape())));
    } else {
      outputs.values.push_back(found ? it->second.value
                                     : Tensor::Zeros(input.value().shape()));
    }
  }
  return outputs;
}

}  // namespace

std::vector<Variable> Grad(const Variable& output,
                           const std::vector<Variable>& inputs,
                           const Variable& grad_output,
                           const GradOptions& options) {
  BackwardOutputs outputs = WalkBackward(output, inputs, grad_output,
                                         options.create_graph,
                                         options.init_grads);
  if (options.create_graph) return std::move(outputs.graphs);
  std::vector<Variable> result;
  result.reserve(outputs.values.size());
  for (Tensor& value : outputs.values) result.push_back(Constant(std::move(value)));
  return result;
}

std::vector<Tensor> GradValues(const Variable& output,
                               const std::vector<Variable>& inputs,
                               const Variable& grad_output,
                               std::vector<Tensor> init_grads) {
  return WalkBackward(output, inputs, grad_output, /*create_graph=*/false,
                      init_grads)
      .values;
}

Tensor HessianVectorProduct(const Variable& grad, const Variable& input,
                            const Tensor& v) {
  MSOPDS_CHECK(grad.value().SameShape(v));
  if (!grad.requires_grad()) {
    // The gradient does not depend on the input (e.g. a linear objective):
    // the Hessian is zero.
    return Tensor::Zeros(input.value().shape());
  }
  Variable inner = Dot(grad, Constant(v.Clone()));
  return GradValues(inner, {input})[0];
}

Tensor MixedVectorJacobian(const Variable& grad, const Variable& other,
                           const Tensor& xi) {
  MSOPDS_CHECK(grad.value().SameShape(xi));
  if (!grad.requires_grad()) {
    return Tensor::Zeros(other.value().shape());
  }
  Variable inner = Dot(grad, Constant(xi.Clone()));
  return GradValues(inner, {other})[0];
}

}  // namespace msopds
