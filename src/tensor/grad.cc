#include "tensor/grad.h"

#include <unordered_map>
#include <unordered_set>

#include "tensor/verify.h"
#include "util/logging.h"

namespace msopds {
namespace {

using internal::Node;

// Collects the set of requires-grad nodes reachable from `root` and the
// number of requires-grad consumers of each (within that set).
void CollectReachable(Node* root,
                      std::unordered_map<Node*, int>* pending_consumers) {
  std::vector<Node*> stack = {root};
  std::unordered_set<Node*> seen = {root};
  (*pending_consumers)[root] = 0;
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (const Variable& input : node->inputs) {
      Node* in = input.node().get();
      if (in == nullptr || !in->requires_grad) continue;
      ++(*pending_consumers)[in];
      if (seen.insert(in).second) stack.push_back(in);
    }
  }
}

}  // namespace

std::vector<Variable> Grad(const Variable& output,
                           const std::vector<Variable>& inputs,
                           const Variable& grad_output) {
  MSOPDS_CHECK(output.defined());
  MSOPDS_CHECK(output.requires_grad())
      << "Grad() of an output that does not require grad";

  // Debug builds statically verify the recorded graph before walking it, so
  // a malformed graph fails loudly here instead of corrupting gradients.
  if (internal::AutoVerifyEnabled() && !internal::GradRecordingActive()) {
    const VerifyResult verification = VerifyGraph(output);
    MSOPDS_CHECK(verification.ok())
        << "autodiff graph failed verification before Grad():\n"
        << verification.Report()
        << "(use GraphToDot() on the output to visualize the failing graph)";
  }
  // Ops recorded while building the backward graph are tagged as gradient
  // consumers of their inputs; mutable_value() guards against mutating
  // leaves those live gradient graphs still reference.
  internal::ScopedGradRecording recording;

  Variable seed = grad_output.defined()
                      ? grad_output
                      : Constant(Tensor::Ones(output.value().shape()));
  MSOPDS_CHECK(seed.value().SameShape(output.value()))
      << "grad_output shape mismatch";

  std::unordered_map<Node*, int> pending;
  CollectReachable(output.node().get(), &pending);

  std::unordered_map<Node*, Variable> accumulated;
  accumulated[output.node().get()] = seed;

  std::vector<Node*> ready = {output.node().get()};
  while (!ready.empty()) {
    Node* node = ready.back();
    ready.pop_back();
    const Variable grad = accumulated.at(node);
    if (!node->backward) continue;  // leaf
    const std::vector<Variable> input_grads = node->backward(grad, node->inputs);
    MSOPDS_CHECK_EQ(input_grads.size(), node->inputs.size())
        << "op " << node->op_name;
    for (size_t i = 0; i < node->inputs.size(); ++i) {
      Node* in = node->inputs[i].node().get();
      if (in == nullptr || !in->requires_grad) continue;
      const Variable& ig = input_grads[i];
      if (ig.defined()) {
        MSOPDS_CHECK(ig.value().SameShape(in->value))
            << "gradient shape mismatch for input " << i << " of op "
            << node->op_name << ": " << ig.value().DebugString(2) << " vs "
            << in->value.DebugString(2);
        auto it = accumulated.find(in);
        if (it == accumulated.end()) {
          accumulated[in] = ig;
        } else {
          it->second = Add(it->second, ig);
        }
      }
      auto pit = pending.find(in);
      MSOPDS_CHECK(pit != pending.end());
      if (--pit->second == 0) {
        // Only schedule nodes that actually received gradient; nodes with
        // no accumulated grad contribute nothing downstream.
        if (accumulated.count(in) > 0) ready.push_back(in);
      }
    }
  }

  std::vector<Variable> result;
  result.reserve(inputs.size());
  for (const Variable& input : inputs) {
    MSOPDS_CHECK(input.defined());
    auto it = accumulated.find(input.node().get());
    if (it != accumulated.end() && input.requires_grad()) {
      result.push_back(it->second);
    } else {
      result.push_back(Constant(Tensor::Zeros(input.value().shape())));
    }
  }
  return result;
}

std::vector<Tensor> GradValues(const Variable& output,
                               const std::vector<Variable>& inputs,
                               const Variable& grad_output) {
  std::vector<Variable> grads = Grad(output, inputs, grad_output);
  std::vector<Tensor> values;
  values.reserve(grads.size());
  for (const Variable& g : grads) values.push_back(g.value());
  return values;
}

Tensor HessianVectorProduct(const Variable& grad, const Variable& input,
                            const Tensor& v) {
  MSOPDS_CHECK(grad.value().SameShape(v));
  if (!grad.requires_grad()) {
    // The gradient does not depend on the input (e.g. a linear objective):
    // the Hessian is zero.
    return Tensor::Zeros(input.value().shape());
  }
  Variable inner = Dot(grad, Constant(v.Clone()));
  return Grad(inner, {input})[0].value();
}

Tensor MixedVectorJacobian(const Variable& grad, const Variable& other,
                           const Tensor& xi) {
  MSOPDS_CHECK(grad.value().SameShape(xi));
  if (!grad.requires_grad()) {
    return Tensor::Zeros(other.value().shape());
  }
  Variable inner = Dot(grad, Constant(xi.Clone()));
  return Grad(inner, {other})[0].value();
}

}  // namespace msopds
