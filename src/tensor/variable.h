#ifndef MSOPDS_TENSOR_VARIABLE_H_
#define MSOPDS_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace msopds {

class Variable;

namespace internal {

/// One recorded operation (or leaf) in the autodiff DAG.
///
/// `backward` maps the gradient w.r.t. this node's output to gradients
/// w.r.t. each input, *expressed as Variables built from recorded ops*.
/// Because every backward is itself a composition of recorded ops, the
/// gradient graph is differentiable again, giving exact higher-order
/// derivatives (required by MSO's Hessian-vector products, Algorithm 1
/// steps 9-10 of the paper).
struct Node {
  using BackwardFn = std::function<std::vector<Variable>(
      const Variable& grad_output, const std::vector<Variable>& inputs)>;

  Tensor value;
  bool requires_grad = false;
  std::vector<Variable> inputs;
  BackwardFn backward;
  const char* op_name = "leaf";

  /// Version stamps of each input's tensor at record time (parallel to
  /// `inputs`). GraphVerifier flags nodes whose inputs were mutated after
  /// recording — re-differentiating such a graph silently uses stale
  /// values.
  std::vector<uint64_t> input_generations;

  /// Number of live recorded nodes holding this node as an input, and the
  /// subset of those recorded while Grad() was building a gradient graph.
  /// Maintained by AttachInputs()/~Node. mutable_value() refuses (in
  /// Debug) to mutate a leaf with live gradient-graph consumers; forward
  /// graphs routinely outlive one optimizer step, so they are counted
  /// separately and not guarded.
  int live_consumers = 0;
  int live_grad_consumers = 0;
  bool in_grad_graph = false;

  /// Process-wide creation order (1, 2, 3, ...). A node's inputs always
  /// carry smaller seq values than the node itself, so firing ready nodes
  /// in decreasing seq order yields one canonical reverse-topological
  /// backward walk. Grad() relies on this: the walk order — and therefore
  /// the floating-point fold of accumulated gradients — is independent of
  /// how the graph was partitioned, which is what makes checkpointed
  /// (segment-by-segment) backward bit-identical to the full walk.
  uint64_t seq = 0;

  Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;
  ~Node();
};

/// Records `inputs` on `node`: stores them, snapshots their tensor
/// generations, and increments their consumer counts (paired with the
/// decrements in ~Node). Every recorded op must attach inputs through
/// this helper so the verifier's bookkeeping stays consistent.
void AttachInputs(Node* node, std::vector<Variable> inputs);

/// True while Grad() is recording backward ops; nodes recorded in that
/// scope are tagged as gradient-graph consumers of their inputs.
bool GradRecordingActive();

/// RAII scope used by Grad() to tag recorded nodes as gradient-graph
/// nodes. Nests (HVP calls Grad on a graph built by Grad).
class ScopedGradRecording {
 public:
  ScopedGradRecording();
  ScopedGradRecording(const ScopedGradRecording&) = delete;
  ScopedGradRecording& operator=(const ScopedGradRecording&) = delete;
  ~ScopedGradRecording();

 private:
  bool previous_;
};

/// The leaf-mutation guard makes Variable::mutable_value() CHECK-fail on
/// a leaf with live gradient-graph consumers. Defaults to on in Debug
/// builds (NDEBUG not defined), off in Release; the setter returns the
/// previous value so tests can restore it.
bool LeafMutationGuardEnabled();
bool SetLeafMutationGuard(bool enabled);

}  // namespace internal

/// A node handle in the autodiff graph: a Tensor value plus (optionally)
/// the recorded operation that produced it. Copies are shallow; the graph
/// is reference-counted and freed when the last handle dies (no global
/// tape).
class Variable {
 public:
  /// Undefined variable (used for "no gradient").
  Variable();

  /// Leaf holding `value`. Only leaves with requires_grad can receive
  /// gradients from Grad().
  explicit Variable(Tensor value, bool requires_grad = false);

  /// True unless default-constructed.
  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;

  /// Mutable access to the leaf's tensor, for optimizer in-place updates.
  /// CHECK-fails on non-leaf nodes (their values are derived).
  Tensor& mutable_value();

  bool requires_grad() const;
  bool is_leaf() const;
  const char* op_name() const;

  /// A new leaf sharing this variable's value but cut from the graph.
  Variable Detach() const;

  /// Internal: used by ops.cc and grad.cc.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  static Variable FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Leaf constant (requires_grad = false).
Variable Constant(Tensor value);

/// Scalar constant.
Variable ConstantScalar(double value);

/// Leaf parameter (requires_grad = true).
Variable Param(Tensor value);

}  // namespace msopds

#endif  // MSOPDS_TENSOR_VARIABLE_H_
