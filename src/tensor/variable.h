#ifndef MSOPDS_TENSOR_VARIABLE_H_
#define MSOPDS_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace msopds {

class Variable;

namespace internal {

/// One recorded operation (or leaf) in the autodiff DAG.
///
/// `backward` maps the gradient w.r.t. this node's output to gradients
/// w.r.t. each input, *expressed as Variables built from recorded ops*.
/// Because every backward is itself a composition of recorded ops, the
/// gradient graph is differentiable again, giving exact higher-order
/// derivatives (required by MSO's Hessian-vector products, Algorithm 1
/// steps 9-10 of the paper).
struct Node {
  using BackwardFn = std::function<std::vector<Variable>(
      const Variable& grad_output, const std::vector<Variable>& inputs)>;

  Tensor value;
  bool requires_grad = false;
  std::vector<Variable> inputs;
  BackwardFn backward;
  const char* op_name = "leaf";
};

}  // namespace internal

/// A node handle in the autodiff graph: a Tensor value plus (optionally)
/// the recorded operation that produced it. Copies are shallow; the graph
/// is reference-counted and freed when the last handle dies (no global
/// tape).
class Variable {
 public:
  /// Undefined variable (used for "no gradient").
  Variable();

  /// Leaf holding `value`. Only leaves with requires_grad can receive
  /// gradients from Grad().
  explicit Variable(Tensor value, bool requires_grad = false);

  /// True unless default-constructed.
  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;

  /// Mutable access to the leaf's tensor, for optimizer in-place updates.
  /// CHECK-fails on non-leaf nodes (their values are derived).
  Tensor& mutable_value();

  bool requires_grad() const;
  bool is_leaf() const;
  const char* op_name() const;

  /// A new leaf sharing this variable's value but cut from the graph.
  Variable Detach() const;

  /// Internal: used by ops.cc and grad.cc.
  const std::shared_ptr<internal::Node>& node() const { return node_; }
  static Variable FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

/// Leaf constant (requires_grad = false).
Variable Constant(Tensor value);

/// Scalar constant.
Variable ConstantScalar(double value);

/// Leaf parameter (requires_grad = true).
Variable Param(Tensor value);

}  // namespace msopds

#endif  // MSOPDS_TENSOR_VARIABLE_H_
