#ifndef MSOPDS_TENSOR_OPS_H_
#define MSOPDS_TENSOR_OPS_H_

#include <memory>
#include <vector>

#include "tensor/variable.h"

namespace msopds {

/// Shared immutable index vector used by gather/scatter/sparse ops so that
/// backward closures can reference indices without copying them.
using IndexVec = std::shared_ptr<const std::vector<int64_t>>;

/// Wraps indices into an IndexVec.
IndexVec MakeIndex(std::vector<int64_t> indices);

// ---------------------------------------------------------------------------
// Elementwise arithmetic. Operands must have the same shape, or one operand
// may be a scalar (size() == 1), which broadcasts. Every op's backward is
// built from these same ops, so gradients are differentiable to any order.
// ---------------------------------------------------------------------------

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
Variable Neg(const Variable& a);

/// a * c for a compile-time-constant scalar c (no graph node for c).
Variable ScalarMul(const Variable& a, double c);
/// a + c elementwise.
Variable AddScalar(const Variable& a, double c);

Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
/// Elementwise square (sugar for Mul(a, a)).
Variable Square(const Variable& a);

/// Size-preserving shape change (e.g. [1] <-> scalar, [N*M] <-> [N, M]).
Variable Reshape(const Variable& a, std::vector<int64_t> shape);

/// Elementwise select with a *constant* mask (1 -> a, 0 -> b). The mask is
/// treated as locally constant, which matches the a.e.-derivative of
/// piecewise functions such as ReLU/SELU.
Variable Where(const Tensor& mask, const Variable& a, const Variable& b);

/// Constant {0,1} mask of x > 0 (by value).
Tensor GreaterZeroMask(const Tensor& x);

// ---------------------------------------------------------------------------
// Linear algebra and shape ops (rank-2 unless stated).
// ---------------------------------------------------------------------------

Variable MatMul(const Variable& a, const Variable& b);
/// A[n,k] · Bᵀ for B[m,k] -> [n,m]; reads B in its original layout
/// (row-dot kernel), so backward passes never materialize a transpose.
Variable MatMulNT(const Variable& a, const Variable& b);
/// Aᵀ · B[k,m] for A[k,n] -> [n,m]; reads A in its original layout.
Variable MatMulTN(const Variable& a, const Variable& b);
Variable Transpose(const Variable& a);

/// Sum of all elements -> scalar.
Variable Sum(const Variable& a);
/// Mean of all elements -> scalar.
Variable Mean(const Variable& a);
/// Row sums of an [N, M] matrix -> [N].
Variable RowSum(const Variable& a);
/// Tiles a vector [N] into an [N, M] matrix (adjoint of RowSum).
Variable TileCols(const Variable& v, int64_t cols);

/// Concatenates two matrices with equal row counts along columns.
Variable ConcatCols(const Variable& a, const Variable& b);
/// Columns [lo, hi) of a matrix.
Variable SliceCols(const Variable& a, int64_t lo, int64_t hi);

/// Concatenates two vectors.
Variable Concat1(const Variable& a, const Variable& b);
/// Elements [lo, hi) of a vector.
Variable Slice1(const Variable& a, int64_t lo, int64_t hi);

// ---------------------------------------------------------------------------
// Gather / scatter / sparse ops (the GNN kernels).
// ---------------------------------------------------------------------------

/// Rows of X ([N, D]) selected by idx -> [K, D]. Indices may repeat.
Variable GatherRows(const Variable& x, const IndexVec& idx);
/// Scatter-add of G ([K, D]) into a zero [rows, D] matrix at row idx[k].
Variable ScatterAddRows(const Variable& g, const IndexVec& idx, int64_t rows);

/// Elements of a vector selected by idx -> [K].
Variable Gather1(const Variable& x, const IndexVec& idx);
/// Scatter-add of g ([K]) into a zero [size] vector at idx[k]. This is also
/// the segment-sum primitive.
Variable ScatterAdd1(const Variable& g, const IndexVec& idx, int64_t size);

/// Weighted sparse aggregation: out[dst[e]] += w[e] * x[src[e]] over edges
/// e, with x of shape [num_src, D] and output [num_dst, D]. This is the
/// graph-convolution kernel of PDS Eq. (15); w carries the binarized
/// importance entries for candidate poison edges and is differentiable.
Variable SpMM(const IndexVec& dst, const IndexVec& src, const Variable& w,
              const Variable& x, int64_t num_dst);

/// Per-edge dot products: out[e] = dot(a[ai[e]], b[bi[e]]) -> [E].
Variable EdgeDot(const Variable& a, const Variable& b, const IndexVec& ai,
                 const IndexVec& bi);

// ---------------------------------------------------------------------------
// Composites (no new primitives; differentiable to any order).
// ---------------------------------------------------------------------------

/// max(0, x) elementwise.
Variable Relu(const Variable& x);

/// Scaled exponential linear unit (Klambauer et al.), used by the
/// Comprehensive Attack loss (paper Eq. (5)).
Variable Selu(const Variable& x);

/// Logistic sigmoid.
Variable Sigmoid(const Variable& x);

/// Row-wise dot products of two [K, D] matrices -> [K].
Variable PairDot(const Variable& a, const Variable& b);

/// Inner product of two vectors -> scalar.
Variable Dot(const Variable& a, const Variable& b);

/// Softmax over segments: scores [E] grouped by seg[e] in [0, num_segments).
/// Stabilized by the per-segment max (treated as constant).
Variable SegmentSoftmax(const Variable& scores, const IndexVec& seg,
                        int64_t num_segments);

/// Sum of squares -> scalar (for L2 regularization).
Variable SquaredNorm(const Variable& x);

// Operator sugar for elementwise arithmetic.
inline Variable operator+(const Variable& a, const Variable& b) {
  return Add(a, b);
}
inline Variable operator-(const Variable& a, const Variable& b) {
  return Sub(a, b);
}
inline Variable operator*(const Variable& a, const Variable& b) {
  return Mul(a, b);
}
inline Variable operator-(const Variable& a) { return Neg(a); }

}  // namespace msopds

#endif  // MSOPDS_TENSOR_OPS_H_
