#include "tensor/remat.h"

#include <algorithm>
#include <utility>

#include "tensor/ops.h"
#include "util/logging.h"

namespace msopds {
namespace {

// Fresh leaves holding `values`. requires_grad so a segment's backward
// walk can read boundary adjoints off them.
std::vector<Variable> MakeStateLeaves(const std::vector<Tensor>& values) {
  std::vector<Variable> leaves;
  leaves.reserve(values.size());
  for (const Tensor& v : values) leaves.push_back(Param(v));
  return leaves;
}

}  // namespace

CheckpointedGradResult CheckpointedUnrollGrad(
    const std::vector<Tensor>& initial_state,
    const std::vector<Variable>& inputs, int64_t num_steps,
    int64_t checkpoint_every, const UnrollStepFn& step,
    const UnrollLossFn& loss) {
  MSOPDS_CHECK_GE(num_steps, 0);
  MSOPDS_CHECK(step != nullptr);
  MSOPDS_CHECK(loss != nullptr);
  const int64_t k = (checkpoint_every <= 0 || checkpoint_every >= num_steps)
                        ? std::max<int64_t>(num_steps, 1)
                        : checkpoint_every;

  CheckpointedGradResult result;

  // Forward snapshot pass (segmented mode only): run each step on fresh
  // leaves so the step's tape dies as soon as its values are read,
  // keeping only the state at segment boundaries. The leaves must
  // require grad: functional-SGD steps differentiate w.r.t. the handed
  // state internally, and a detached state would silently turn that
  // inner Grad into zeros, corrupting every snapshot downstream.
  std::vector<std::vector<Tensor>> snapshots;
  snapshots.push_back(initial_state);
  if (k < num_steps) {
    std::vector<Tensor> values = initial_state;
    for (int64_t t = 0; t < num_steps; ++t) {
      std::vector<Variable> state = MakeStateLeaves(values);
      std::vector<Variable> next = step(state, t);
      MSOPDS_CHECK_EQ(next.size(), values.size())
          << "step must preserve state arity";
      values.clear();
      for (const Variable& v : next) values.push_back(v.value());
      if ((t + 1) % k == 0 && (t + 1) < num_steps) snapshots.push_back(values);
    }
  }

  const int64_t num_segments =
      num_steps == 0 ? 1 : (num_steps + k - 1) / k;
  MSOPDS_CHECK_EQ(static_cast<int64_t>(snapshots.size()), num_segments);
  result.segments = num_segments;

  // Backward, latest segment first. `adj` carries boundary adjoints down
  // to the next segment; `input_carry` chains shared-leaf gradients so
  // each segment's walk continues the full tape's left fold.
  std::vector<Tensor> adj;
  std::vector<Tensor> input_carry(inputs.size());
  for (int64_t j = num_segments - 1; j >= 0; --j) {
    const int64_t begin = j * k;
    const int64_t end = std::min(num_steps, (j + 1) * k);
    std::vector<Variable> leaves = MakeStateLeaves(snapshots[static_cast<size_t>(j)]);
    std::vector<Variable> state = leaves;
    for (int64_t t = begin; t < end; ++t) {
      state = step(state, t);
      MSOPDS_CHECK_EQ(state.size(), leaves.size())
          << "step must preserve state arity";
    }

    Variable root;
    if (j == num_segments - 1) {
      root = loss(state);
      MSOPDS_CHECK(root.defined());
      MSOPDS_CHECK_EQ(root.value().size(), 1)
          << "terminal loss must be scalar";
      result.loss = root.value();
      result.final_state.reserve(state.size());
      for (const Variable& s : state) result.final_state.push_back(s.value());
    } else {
      // Seed this segment's outputs with the adjoints computed by the
      // segment above: Dot(out, Constant(adj)) delivers adj * 1.0 to
      // `out` in the walk — exact, so the hand-off is bitwise.
      MSOPDS_CHECK_EQ(adj.size(), state.size());
      for (size_t i = 0; i < state.size(); ++i) {
        Variable term = Dot(state[i], Constant(adj[i]));
        root = root.defined() ? Add(root, term) : term;
      }
    }

    std::vector<Variable> walk_inputs = leaves;
    walk_inputs.insert(walk_inputs.end(), inputs.begin(), inputs.end());
    std::vector<Tensor> init(leaves.size());
    init.insert(init.end(), input_carry.begin(), input_carry.end());
    std::vector<Tensor> grads =
        GradValues(root, walk_inputs, Variable(), std::move(init));
    adj.assign(std::make_move_iterator(grads.begin()),
               std::make_move_iterator(grads.begin() +
                                       static_cast<int64_t>(leaves.size())));
    for (size_t i = 0; i < inputs.size(); ++i) {
      input_carry[i] = std::move(grads[leaves.size() + i]);
    }
  }

  result.state_grads = std::move(adj);
  result.input_grads = std::move(input_carry);
  return result;
}

}  // namespace msopds
