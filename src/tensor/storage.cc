#include "tensor/storage.h"

#include <cstring>

#include "util/arena.h"
#include "util/logging.h"

namespace msopds {
namespace {

// The installed hook and its installation epoch are both thread-local: a
// storage created under installation N calls OnDestroy only if the thread
// destroying it still has installation N current. A buffer escaping its
// recording scope (or dying on another thread) therefore just misses its
// free event — the compiler keeps it live to the end of the tape, which
// over-allocates but never aliases.
thread_local TensorStorage::AllocHook* t_alloc_hook = nullptr;
thread_local uint64_t t_alloc_hook_epoch = 0;

}  // namespace

TensorStorage::AllocHook* TensorStorage::SetThreadAllocHook(AllocHook* hook) {
  AllocHook* previous = t_alloc_hook;
  t_alloc_hook = hook;
  ++t_alloc_hook_epoch;
  return previous;
}

std::shared_ptr<TensorStorage> TensorStorage::Create(int64_t size,
                                                     bool zero) {
  MSOPDS_CHECK_GE(size, 0);
  double* data = nullptr;
  int64_t slot = -1;
  std::shared_ptr<void> keepalive;
  if (t_alloc_hook != nullptr) {
    data = t_alloc_hook->OnCreate(size, &slot, &keepalive);
  }
  const bool planned = data != nullptr;
  if (!planned) data = Arena::Global().Allocate(size);
  if (zero && size > 0) {
    std::memset(data, 0, static_cast<size_t>(size) * sizeof(double));
  }
  auto storage = std::shared_ptr<TensorStorage>(new TensorStorage(data, size));
  if (planned) {
    storage->keepalive_ = std::move(keepalive);
  } else if (slot >= 0) {
    storage->hook_slot_ = slot;
    storage->hook_epoch_ = t_alloc_hook_epoch;
  }
  return storage;
}

TensorStorage::~TensorStorage() {
  if (hook_slot_ >= 0 && t_alloc_hook != nullptr &&
      t_alloc_hook_epoch == hook_epoch_) {
    t_alloc_hook->OnDestroy(hook_slot_);
  }
  if (keepalive_ == nullptr) {
    Arena::Global().Deallocate(data_, size_);
  }
}

}  // namespace msopds
