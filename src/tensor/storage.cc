#include "tensor/storage.h"

#include <cstring>

#include "util/arena.h"
#include "util/logging.h"

namespace msopds {

std::shared_ptr<TensorStorage> TensorStorage::Create(int64_t size,
                                                     bool zero) {
  MSOPDS_CHECK_GE(size, 0);
  double* data = Arena::Global().Allocate(size);
  if (zero && size > 0) {
    std::memset(data, 0, static_cast<size_t>(size) * sizeof(double));
  }
  return std::shared_ptr<TensorStorage>(new TensorStorage(data, size));
}

TensorStorage::~TensorStorage() {
  Arena::Global().Deallocate(data_, size_);
}

}  // namespace msopds
