#ifndef MSOPDS_TENSOR_OPTIM_H_
#define MSOPDS_TENSOR_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"
#include "tensor/variable.h"

namespace msopds {

/// First-order optimizers for ordinary (non-unrolled) training, e.g. the
/// victim Het-RecSys in paper Eq. (1). Parameters must be leaf Variables;
/// Step mutates their tensors in place. The differentiable surrogate (PDS)
/// does NOT use these: its inner loop builds functional update graphs.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update. grads[i] must match params[i]'s shape.
  virtual void Step(std::vector<Variable>* params,
                    const std::vector<Tensor>& grads) = 0;
};

/// SGD with optional momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0,
               double weight_decay = 0.0);

  void Step(std::vector<Variable>* params,
            const std::vector<Tensor>& grads) override;

 private:
  double learning_rate_;
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with decoupled weight decay.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8, double weight_decay = 0.0);

  void Step(std::vector<Variable>* params,
            const std::vector<Tensor>& grads) override;

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  int64_t step_count_ = 0;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
};

}  // namespace msopds

#endif  // MSOPDS_TENSOR_OPTIM_H_
