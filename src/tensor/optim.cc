#include "tensor/optim.h"

#include <cmath>

#include "util/logging.h"

namespace msopds {
namespace {

void CheckShapes(const std::vector<Variable>& params,
                 const std::vector<Tensor>& grads) {
  MSOPDS_CHECK_EQ(params.size(), grads.size());
  for (size_t i = 0; i < params.size(); ++i) {
    MSOPDS_CHECK(params[i].value().SameShape(grads[i]))
        << "param/grad shape mismatch at index " << i;
  }
}

}  // namespace

Sgd::Sgd(double learning_rate, double momentum, double weight_decay)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  MSOPDS_CHECK_GT(learning_rate, 0.0);
  MSOPDS_CHECK_GE(momentum, 0.0);
  MSOPDS_CHECK_GE(weight_decay, 0.0);
}

void Sgd::Step(std::vector<Variable>* params, const std::vector<Tensor>& grads) {
  CheckShapes(*params, grads);
  if (momentum_ > 0.0 && velocity_.empty()) {
    for (const Variable& p : *params)
      velocity_.push_back(Tensor::Zeros(p.value().shape()));
  }
  for (size_t i = 0; i < params->size(); ++i) {
    Tensor& value = (*params)[i].mutable_value();
    const double* g = grads[i].data();
    double* v = value.data();
    if (momentum_ > 0.0) {
      double* mom = velocity_[i].data();
      for (int64_t j = 0; j < value.size(); ++j) {
        const double grad = g[j] + weight_decay_ * v[j];
        mom[j] = momentum_ * mom[j] + grad;
        v[j] -= learning_rate_ * mom[j];
      }
    } else {
      for (int64_t j = 0; j < value.size(); ++j) {
        v[j] -= learning_rate_ * (g[j] + weight_decay_ * v[j]);
      }
    }
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon,
           double weight_decay)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  MSOPDS_CHECK_GT(learning_rate, 0.0);
  MSOPDS_CHECK(beta1 >= 0.0 && beta1 < 1.0);
  MSOPDS_CHECK(beta2 >= 0.0 && beta2 < 1.0);
}

void Adam::Step(std::vector<Variable>* params,
                const std::vector<Tensor>& grads) {
  CheckShapes(*params, grads);
  if (first_moment_.empty()) {
    for (const Variable& p : *params) {
      first_moment_.push_back(Tensor::Zeros(p.value().shape()));
      second_moment_.push_back(Tensor::Zeros(p.value().shape()));
    }
  }
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (size_t i = 0; i < params->size(); ++i) {
    Tensor& value = (*params)[i].mutable_value();
    const double* g = grads[i].data();
    double* v = value.data();
    double* m1 = first_moment_[i].data();
    double* m2 = second_moment_[i].data();
    for (int64_t j = 0; j < value.size(); ++j) {
      const double grad = g[j] + weight_decay_ * v[j];
      m1[j] = beta1_ * m1[j] + (1.0 - beta1_) * grad;
      m2[j] = beta2_ * m2[j] + (1.0 - beta2_) * grad * grad;
      const double m1_hat = m1[j] / bias1;
      const double m2_hat = m2[j] / bias2;
      v[j] -= learning_rate_ * m1_hat / (std::sqrt(m2_hat) + epsilon_);
    }
  }
}

}  // namespace msopds
