#ifndef MSOPDS_TENSOR_COMPILE_H_
#define MSOPDS_TENSOR_COMPILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/variable.h"
#include "util/status.h"

namespace msopds {

/// Accounting for one compiled tape (see CompiledTape).
struct TapeStats {
  /// Allocation events captured during the recording run.
  int64_t allocations = 0;
  /// Doubles in the planned slab (after liveness-based offset reuse and
  /// 8-double alignment padding).
  int64_t slab_doubles = 0;
  /// Doubles the same tape costs with no reuse (sum of aligned sizes) —
  /// the denominator of the reuse ratio.
  int64_t naive_doubles = 0;
  /// Maximum doubles simultaneously live during the recording, a lower
  /// bound on any offset plan. slab_doubles between this and
  /// naive_doubles measures the first-fit planner's packing quality.
  int64_t peak_live_doubles = 0;
  /// Recorded (non-leaf) graph nodes harvested into the schedule.
  int64_t ops = 0;
  /// Maximal single-consumer chains of same-shape elementwise ops found
  /// in the schedule, and the ops they cover. A chain's intermediates
  /// are producer-consumer pairs the planner can overlap in the slab and
  /// a fused executor could keep in registers.
  int64_t fusion_chains = 0;
  int64_t fused_ops = 0;
  /// Replay runs completed, and how many of them diverged from the
  /// recorded allocation sequence and fell back to the arena mid-run.
  int64_t replays = 0;
  int64_t replay_fallbacks = 0;
};

/// Ahead-of-time compilation of a tensor tape (DESIGN.md §14).
///
/// Training loops rebuild the *same* graph every iteration: identical op
/// sequence, identical shapes, only the leaf values change. Compile()
/// runs the builder once under a recording allocation hook
/// (TensorStorage::AllocHook), captures the full allocation/free
/// timeline plus a lightweight schedule of the recorded graph, and plans
/// a single slab in which every temporary gets a fixed offset —
/// first-fit over the captured lifetimes, so buffers that were never
/// simultaneously live share addresses. Replay() then re-runs the
/// builder with every allocation served at its planned offset: no arena
/// traffic, no size-class rounding, perfect reuse, same values.
///
/// Determinism: replay changes only *where* buffers live, never what is
/// computed or in what order, so replayed results are bit-identical to
/// the eager run at any thread count (asserted by tests/tensor/
/// compile_test.cc over full TrainModel and PDS attack steps).
///
/// Divergence: if a replay's allocation sequence departs from the
/// recording (a data-dependent branch — e.g. a trainer health rollback —
/// changed the graph), the replay permanently falls back to the arena
/// for the rest of that run and counts a replay_fallback. Results are
/// still correct; only the planned-reuse benefit is lost for that run.
///
/// Escape: tensors that outlive the builder (results moved out through
/// captures, or the returned root) miss their free event, so the planner
/// conservatively keeps them live to the end of the tape — they get
/// dedicated slab space that is never reused. Each replayed tensor holds
/// a reference to the slab, which therefore outlives anything that
/// escapes; but note a later Replay() overwrites those buffers in place.
/// Callers that keep results across replays must Clone() them out first
/// (PdsSurrogate does).
///
/// Threading: the hook is thread-local and kernels never allocate inside
/// parallel regions (DESIGN.md §9), so worker-thread activity bypasses
/// the hook by construction. Compile/Replay must be called from one
/// thread at a time per tape.
class CompiledTape {
 public:
  /// Builds one iteration of the tape and returns its root (or an
  /// undefined Variable when the iteration's results escape through
  /// captures — the schedule is then not harvested, only the
  /// allocation plan).
  using BuildFn = std::function<Variable()>;

  /// One harvested graph node, in execution (seq) order.
  struct NodeInfo {
    std::string op;
    uint64_t seq = 0;
    std::vector<uint64_t> input_seqs;
    std::vector<int64_t> shape;
    std::vector<std::vector<int64_t>> input_shapes;
  };

  /// Runs `build` eagerly under the recording hook (its side effects —
  /// captured results — are those of a normal eager run, bit-exact) and
  /// plans offsets + schedule from the capture.
  static std::shared_ptr<CompiledTape> Compile(const BuildFn& build);

  /// Re-runs `build` with allocations served from the planned slab.
  /// Returns the new root.
  Variable Replay(const BuildFn& build);

  /// Dry-run validation of the plan, for tools/verify_graph
  /// --compile-only: planned offsets of lifetime-overlapping buffers
  /// must not alias, the schedule must be a valid topological order,
  /// every scheduled op must re-pass its registry shape inference on the
  /// captured shapes, and fusion chains must be well-formed.
  Status Validate() const;

  const TapeStats& stats() const { return stats_; }
  const std::vector<NodeInfo>& schedule() const { return schedule_; }
  /// Seq lists of the fused elementwise runs, each of length >= 2.
  const std::vector<std::vector<uint64_t>>& fusion_chains() const {
    return fusion_chains_;
  }

 private:
  friend class TapeRecorder;
  friend class TapeReplayer;

  /// One recorded allocation: its size and [alloc, free) position in the
  /// event timeline (free == INT64_MAX when the buffer escaped the
  /// recording scope). `offset` is assigned by the planner.
  struct Slot {
    int64_t size = 0;
    int64_t alloc_event = 0;
    int64_t free_event = 0;
    int64_t offset = 0;
  };

  CompiledTape() = default;

  void HarvestGraph(const Variable& root);
  void PlanOffsets();
  void PlanFusion();
  void EnsureSlab();

  std::vector<Slot> slots_;
  std::vector<NodeInfo> schedule_;
  std::vector<std::vector<uint64_t>> fusion_chains_;
  std::shared_ptr<std::vector<double>> slab_;
  TapeStats stats_;
};

}  // namespace msopds

#endif  // MSOPDS_TENSOR_COMPILE_H_
