#include "tensor/verify.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

using internal::Node;

std::string ShapeStr(const Tensor& t) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < t.shape().size(); ++i) {
    if (i > 0) out << ",";
    out << t.shape()[i];
  }
  out << "]";
  return out.str();
}

/// Unique nodes reachable from `root` (root first). Safe on cyclic graphs.
std::vector<Node*> CollectNodes(Node* root) {
  std::vector<Node*> nodes;
  std::vector<Node*> stack = {root};
  std::unordered_set<Node*> seen = {root};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    nodes.push_back(node);
    for (const Variable& input : node->inputs) {
      Node* in = input.node().get();
      if (in != nullptr && seen.insert(in).second) stack.push_back(in);
    }
  }
  return nodes;
}

/// Iterative three-color DFS; reports each node that closes a cycle.
void FindCycles(Node* root, std::vector<Diagnostic>* diagnostics) {
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<Node*, Color> color;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack = {{root, 0}};
  color[root] = Color::kGray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input >= frame.node->inputs.size()) {
      color[frame.node] = Color::kBlack;
      stack.pop_back();
      continue;
    }
    Node* in = frame.node->inputs[frame.next_input++].node().get();
    if (in == nullptr) continue;
    auto it = color.find(in);
    if (it == color.end()) {
      color[in] = Color::kGray;
      stack.push_back({in, 0});
    } else if (it->second == Color::kGray) {
      diagnostics->push_back(
          {DiagSeverity::kError, frame.node, frame.node->op_name,
           std::string("cycle: op consumes its own (transitive) output via ") +
               in->op_name +
               "; backprop cannot be scheduled and the ref-counted graph "
               "would never be freed"});
    }
  }
}

/// Longest input chain (leaves at depth 1). Gray re-entries (cycles) are
/// treated as depth 0 so the walk terminates; FindCycles reports them.
int64_t MaxDepth(Node* root) {
  std::unordered_map<Node*, int64_t> depth;
  struct Frame {
    Node* node;
    size_t next_input;
    int64_t best_child = 0;
  };
  std::unordered_set<Node*> on_stack = {root};
  std::vector<Frame> stack = {{root, 0}};
  int64_t result = 0;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_input >= frame.node->inputs.size()) {
      const int64_t d = frame.best_child + 1;
      depth[frame.node] = d;
      result = std::max(result, d);
      on_stack.erase(frame.node);
      stack.pop_back();
      if (!stack.empty()) {
        stack.back().best_child = std::max(stack.back().best_child, d);
      }
      continue;
    }
    Node* in = frame.node->inputs[frame.next_input++].node().get();
    if (in == nullptr) continue;
    auto it = depth.find(in);
    if (it != depth.end()) {
      frame.best_child = std::max(frame.best_child, it->second);
    } else if (on_stack.insert(in).second) {
      stack.push_back({in, 0});
    }
  }
  return result;
}

void CheckNode(Node* node, const GraphVerifier::Options& options,
               std::vector<Diagnostic>* diagnostics, GraphStats* stats) {
  // Nodes with no recorded inputs are leaves for verification purposes:
  // ops over all-constant operands keep their op_name but record neither
  // inputs nor a backward (they act as constants).
  if (node->inputs.empty()) return;

  if (options.check_requires_grad) {
    bool any_input_grad = false;
    for (const Variable& input : node->inputs) {
      any_input_grad = any_input_grad || input.requires_grad();
    }
    if (node->requires_grad && !any_input_grad) {
      diagnostics->push_back(
          {DiagSeverity::kError, node, node->op_name,
           "requires_grad set but no input requires grad (unsound "
           "propagation; Grad() would differentiate a constant)"});
    } else if (!node->requires_grad && any_input_grad) {
      diagnostics->push_back(
          {DiagSeverity::kError, node, node->op_name,
           "requires_grad dropped: an input requires grad but this node "
           "does not, silently cutting its gradient path"});
    }
    if (node->requires_grad && !node->backward) {
      diagnostics->push_back(
          {DiagSeverity::kError, node, node->op_name,
           "interior requires-grad node has no backward function"});
    }
  }

  if (options.check_stale_inputs &&
      node->input_generations.size() == node->inputs.size()) {
    for (size_t i = 0; i < node->inputs.size(); ++i) {
      const Node* in = node->inputs[i].node().get();
      if (in == nullptr) continue;
      const uint64_t now = in->value.generation();
      if (now != node->input_generations[i]) {
        std::ostringstream msg;
        msg << "stale input " << i << " (" << in->op_name << " "
            << ShapeStr(in->value) << "): tensor generation " << now
            << " != " << node->input_generations[i]
            << " recorded; the input was mutated (e.g. via mutable_value()) "
               "after this op captured it";
        diagnostics->push_back(
            {DiagSeverity::kError, node, node->op_name, msg.str()});
      }
    }
  }

  if (!options.check_shapes) return;
  const OpSpec* spec = FindOpSpec(node->op_name);
  if (spec == nullptr) {
    if (options.warn_unknown_ops) {
      diagnostics->push_back(
          {DiagSeverity::kWarning, node, node->op_name,
           "op is not in the shape-inference registry; shapes unchecked"});
    }
    return;
  }
  if (spec->arity != static_cast<int>(node->inputs.size())) {
    std::ostringstream msg;
    msg << "arity mismatch: " << node->inputs.size() << " recorded inputs, "
        << "registry expects " << spec->arity;
    diagnostics->push_back(
        {DiagSeverity::kError, node, node->op_name, msg.str()});
    return;
  }
  if (!spec->infer) return;
  std::vector<const Tensor*> input_values;
  input_values.reserve(node->inputs.size());
  for (const Variable& input : node->inputs) {
    if (!input.defined()) {
      diagnostics->push_back({DiagSeverity::kError, node, node->op_name,
                              "undefined input Variable"});
      return;
    }
    input_values.push_back(&input.value());
  }
  const Status status = spec->infer(input_values, node->value);
  if (!status.ok()) {
    diagnostics->push_back({DiagSeverity::kError, node, node->op_name,
                            "shape check failed: " + status.message()});
    return;
  }

  // Write-overlap pass: rebuild the kernel's chunk grid from the recorded
  // shapes (now known consistent) and check no two chunks write the same
  // destination element. Catches a grid/kernel mismatch — the class of
  // bug that only shows up as a data race under MSOPDS_THREADS > 1 —
  // without executing anything.
  if (!options.check_write_overlap || !spec->write_plan) return;
  std::vector<std::vector<int64_t>> input_shapes;
  input_shapes.reserve(input_values.size());
  for (const Tensor* input : input_values) {
    input_shapes.push_back(input->shape());
  }
  const WritePlan plan = spec->write_plan(input_shapes, node->value.shape());
  ++stats->num_write_planned_nodes;
  stats->num_planned_chunks += plan.num_chunks;
  const Status plan_status = VerifyWritePlan(node->op_name, plan);
  if (!plan_status.ok()) {
    diagnostics->push_back(
        {DiagSeverity::kError, node, node->op_name,
         "write-overlap check failed: " + plan_status.message()});
  }
}

}  // namespace

Status VerifyWritePlan(const std::string& op_name, const WritePlan& plan) {
  auto fail = [&op_name](const std::string& message) {
    return Status::InvalidArgument(op_name + ": " + message);
  };
  auto str = [](int64_t v) { return std::to_string(v); };

  if (plan.units < 0) return fail("negative unit count " + str(plan.units));
  if (plan.grain <= 0) return fail("non-positive grain " + str(plan.grain));
  if (plan.output_elems < 0) {
    return fail("negative output size " + str(plan.output_elems));
  }
  if (plan.grids < 1) return fail("non-positive grid count " + str(plan.grids));
  const int64_t expected_chunks = NumChunks(plan.units, plan.grain);
  if (plan.grids == 1 && plan.num_chunks != expected_chunks) {
    return fail("grid mismatch: " + str(plan.num_chunks) + " chunks declared, "
                "NumChunks(" + str(plan.units) + ", " + str(plan.grain) +
                ") = " + str(expected_chunks));
  }
  if (plan.num_chunks < 0) {
    return fail("negative chunk count " + str(plan.num_chunks));
  }

  // Exactly one write range per chunk, each in-bounds. One range per
  // chunk is what makes "sort by begin, compare neighbours" a complete
  // overlap check below.
  if (static_cast<int64_t>(plan.writes.size()) != plan.num_chunks) {
    return fail(str(plan.writes.size()) + " write ranges for " +
                str(plan.num_chunks) + " chunks");
  }
  std::vector<bool> chunk_seen(static_cast<size_t>(plan.num_chunks), false);
  for (const ChunkWrite& write : plan.writes) {
    if (write.chunk < 0 || write.chunk >= plan.num_chunks) {
      return fail("chunk id " + str(write.chunk) + " outside grid of " +
                  str(plan.num_chunks));
    }
    if (chunk_seen[static_cast<size_t>(write.chunk)]) {
      return fail("chunk " + str(write.chunk) + " declares two write ranges");
    }
    chunk_seen[static_cast<size_t>(write.chunk)] = true;
    if (write.begin < 0 || write.begin > write.end ||
        write.end > plan.output_elems) {
      return fail("chunk " + str(write.chunk) + " range [" + str(write.begin) +
                  ", " + str(write.end) + ") outside output of " +
                  str(plan.output_elems) + " elements");
    }
  }

  // Pairwise disjointness (the determinism core: two chunks writing one
  // element race under MSOPDS_THREADS > 1), plus exact tiling when the
  // kernel claims full coverage.
  std::vector<ChunkWrite> sorted = plan.writes;
  std::sort(sorted.begin(), sorted.end(),
            [](const ChunkWrite& a, const ChunkWrite& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  int64_t covered = 0;
  bool contiguous = true;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0 && sorted[i].begin < sorted[i - 1].end) {
      return fail("chunks " + str(sorted[i - 1].chunk) + " and " +
                  str(sorted[i].chunk) + " both write [" +
                  str(sorted[i].begin) + ", " +
                  str(std::min(sorted[i - 1].end, sorted[i].end)) +
                  "): parallel write overlap");
    }
    if (sorted[i].begin != covered) contiguous = false;
    covered = sorted[i].end;
  }
  if (plan.covers_output && (!contiguous || covered != plan.output_elems)) {
    return fail("kernel claims full coverage but writes leave gaps in [0, " +
                str(plan.output_elems) + ")");
  }

  if (plan.reduction) {
    if (static_cast<int64_t>(plan.reduction_lanes.size()) != plan.num_chunks) {
      return fail(str(plan.reduction_lanes.size()) + " reduction lanes for " +
                  str(plan.num_chunks) + " chunks");
    }
    for (int64_t i = 0; i < plan.num_chunks; ++i) {
      if (plan.reduction_lanes[static_cast<size_t>(i)] != i) {
        return fail("reduction lane " + str(i) + " maps to chunk " +
                    str(plan.reduction_lanes[static_cast<size_t>(i)]) +
                    ": combine order is not the fixed ascending tree");
      }
    }
  } else if (!plan.reduction_lanes.empty()) {
    return fail("reduction lanes declared on a non-reduction plan");
  }
  return Status::Ok();
}

std::string DiagnosticToString(const Diagnostic& diagnostic) {
  std::ostringstream out;
  out << (diagnostic.severity == DiagSeverity::kError ? "[ERROR]" : "[WARN] ")
      << " op=" << diagnostic.op_name << ": " << diagnostic.message;
  return out.str();
}

int VerifyResult::num_errors() const {
  int count = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) ++count;
  }
  return count;
}

int VerifyResult::num_warnings() const {
  return static_cast<int>(diagnostics.size()) - num_errors();
}

std::string VerifyResult::Report() const {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << DiagnosticToString(d) << "\n";
  }
  return out.str();
}

VerifyResult GraphVerifier::Verify(const Variable& root) const {
  VerifyResult result;
  if (!root.defined()) {
    result.diagnostics.push_back({DiagSeverity::kError, nullptr, "undefined",
                                  "root Variable is undefined"});
    return result;
  }

  if (options_.check_cycles) {
    FindCycles(root.node().get(), &result.diagnostics);
    // A cyclic graph has no well-defined node checks beyond the cycle
    // report, and the accounting walks are guarded but meaningless.
    if (!result.diagnostics.empty()) return result;
  }

  const std::vector<Node*> nodes = CollectNodes(root.node().get());
  // Buffer-identity dedup: tensors aliasing one storage (shallow copies,
  // zero-copy views) count once toward the arena footprint.
  std::unordered_set<const void*> seen_buffers;
  seen_buffers.reserve(nodes.size());
  for (Node* node : nodes) {
    CheckNode(node, options_, &result.diagnostics, &result.stats);
    ++result.stats.num_nodes;
    result.stats.num_edges += static_cast<int64_t>(node->inputs.size());
    const int64_t payload =
        node->value.size() * static_cast<int64_t>(sizeof(double));
    result.stats.value_bytes += payload;
    const void* buffer = node->value.buffer_id();
    if (buffer != nullptr && seen_buffers.insert(buffer).second) {
      result.stats.live_bytes += payload;
      if (!node->inputs.empty()) result.stats.releasable_bytes += payload;
    }
    if (node->inputs.empty()) {
      ++result.stats.num_leaves;
      if (node->requires_grad) ++result.stats.num_params;
    } else if (const OpSpec* spec = FindOpSpec(node->op_name);
               spec != nullptr && spec->parallel_kernel) {
      ++result.stats.num_parallel_kernel_nodes;
    }
    ++result.stats.op_counts[node->op_name];
  }
  result.stats.max_depth = MaxDepth(root.node().get());

  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return result;
}

VerifyResult GraphVerifier::Verify(const Variable& root,
                                   const std::vector<Variable>& inputs) const {
  VerifyResult result = Verify(root);
  if (!root.defined()) return result;

  std::unordered_set<const Node*> reachable;
  for (Node* node : CollectNodes(root.node().get())) reachable.insert(node);

  for (size_t i = 0; i < inputs.size(); ++i) {
    std::ostringstream msg;
    if (!inputs[i].defined()) {
      msg << "gradient input " << i << " is undefined";
      result.diagnostics.push_back(
          {DiagSeverity::kError, nullptr, "input", msg.str()});
      continue;
    }
    const Node* node = inputs[i].node().get();
    if (!inputs[i].requires_grad()) {
      msg << "gradient input " << i << " (" << ShapeStr(inputs[i].value())
          << ") does not require grad; Grad() will return zeros";
      result.diagnostics.push_back(
          {DiagSeverity::kWarning, node, node->op_name, msg.str()});
    } else if (reachable.count(node) == 0) {
      msg << "gradient input " << i << " (" << ShapeStr(inputs[i].value())
          << ") is detached from the output graph (dead subgraph: Detach() "
             "upstream or wrong Variable handle); Grad() will return zeros";
      result.diagnostics.push_back(
          {DiagSeverity::kWarning, node, node->op_name, msg.str()});
    }
  }
  return result;
}

VerifyResult VerifyGraph(const Variable& root) {
  return GraphVerifier().Verify(root);
}

std::string GraphToDot(const Variable& root,
                       const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "digraph autodiff {\n  rankdir=BT;\n  node [fontname=\"monospace\"];\n";
  if (!root.defined()) {
    out << "}\n";
    return out.str();
  }
  std::unordered_map<const Node*, const Diagnostic*> flagged;
  for (const Diagnostic& d : diagnostics) {
    if (d.node != nullptr && flagged.count(d.node) == 0) flagged[d.node] = &d;
  }
  const std::vector<Node*> nodes = CollectNodes(root.node().get());
  std::unordered_map<const Node*, size_t> ids;
  for (size_t i = 0; i < nodes.size(); ++i) ids[nodes[i]] = i;
  for (const Node* node : nodes) {
    out << "  n" << ids[node] << " [label=\"" << node->op_name << "\\n"
        << ShapeStr(node->value) << "\"";
    if (node->inputs.empty()) {
      out << ", shape=box";
      if (node->requires_grad) out << ", peripheries=2";
    }
    auto it = flagged.find(node);
    if (it != flagged.end()) {
      out << ", style=filled, fillcolor="
          << (it->second->severity == DiagSeverity::kError ? "salmon"
                                                           : "orange");
      std::string tooltip = it->second->message;
      for (char& c : tooltip) {
        if (c == '"') c = '\'';
      }
      out << ", tooltip=\"" << tooltip << "\"";
    }
    out << "];\n";
  }
  for (const Node* node : nodes) {
    for (const Variable& input : node->inputs) {
      const Node* in = input.node().get();
      if (in == nullptr) continue;
      out << "  n" << ids[in] << " -> n" << ids[node] << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

namespace internal {
namespace {

#ifndef NDEBUG
bool g_auto_verify = true;
#else
bool g_auto_verify = false;
#endif

}  // namespace

bool AutoVerifyEnabled() { return g_auto_verify; }

bool SetAutoVerify(bool enabled) {
  const bool previous = g_auto_verify;
  g_auto_verify = enabled;
  return previous;
}

Variable MakeTestNode(const char* op_name, Tensor value,
                      std::vector<Variable> inputs, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op_name = op_name;
  const size_t num_inputs = inputs.size();
  AttachInputs(node.get(), std::move(inputs));
  // A structurally valid (if useless) backward, so tests seeding one defect
  // (say, a shape mismatch) don't also trip the missing-backward check.
  node->backward = [num_inputs](const Variable&, const std::vector<Variable>&) {
    return std::vector<Variable>(num_inputs);
  };
  return Variable::FromNode(std::move(node));
}

}  // namespace internal

}  // namespace msopds
