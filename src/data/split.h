#ifndef MSOPDS_DATA_SPLIT_H_
#define MSOPDS_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace msopds {

/// A train/test partition of rating records (the graphs are shared; only
/// the supervision signal is split). Used for recommendation-quality
/// evaluation, which the attack experiments keep an eye on as collateral
/// damage (robustness_audit example).
struct RatingSplit {
  std::vector<Rating> train;
  std::vector<Rating> test;
};

/// Options for SplitRatings.
struct SplitOptions {
  /// Fraction of ratings held out for testing.
  double test_fraction = 0.2;
  /// Guarantee at least one training rating per user that has any
  /// (otherwise their embedding is unsupervised and test RMSE is noise).
  bool keep_one_per_user = true;
};

/// Random train/test split of the dataset's ratings.
RatingSplit SplitRatings(const Dataset& dataset, Rng* rng,
                         const SplitOptions& options = {});

}  // namespace msopds

#endif  // MSOPDS_DATA_SPLIT_H_
