#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/item_graph_builder.h"
#include "util/logging.h"

namespace msopds {
namespace {

int64_t Scaled(int64_t value, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                  static_cast<double>(value) * scale)));
}

// Draws a rating from item quality + user bias + noise, discretized to 1..5,
// then nudged toward the configured marginal histogram via a mixture.
double DrawRating(const SyntheticConfig& config, double item_quality,
                  double user_bias, Rng* rng) {
  // With probability 0.5 sample from the global histogram, otherwise from
  // the personalized model; this matches both the marginal distribution and
  // per-item consistency.
  if (rng->Bernoulli(0.5)) {
    double total = 0.0;
    for (double p : config.rating_histogram) total += p;
    double u = rng->Uniform() * total;
    for (int k = 0; k < 5; ++k) {
      u -= config.rating_histogram[static_cast<size_t>(k)];
      if (u <= 0.0) return static_cast<double>(k + 1);
    }
    return 5.0;
  }
  const double raw =
      item_quality + user_bias + rng->Normal(0.0, config.rating_noise);
  const double clamped = std::min(kMaxRating, std::max(kMinRating, raw));
  return std::round(clamped);
}

}  // namespace

SyntheticConfig CiaoProfile(double scale) {
  SyntheticConfig config;
  config.name = "ciao";
  config.num_users = Scaled(2611, scale);
  config.num_items = Scaled(3823, scale);
  config.num_ratings = Scaled(44453, scale);
  config.num_social_links = Scaled(49953, scale);
  // Ciao has the densest rating matrix of the three and a relatively
  // sparse social propagation structure per user (paper §VI-B).
  config.social_degree_alpha = 1.1;
  config.triadic_closure_fraction = 0.2;
  return config;
}

SyntheticConfig EpinionsProfile(double scale) {
  SyntheticConfig config;
  config.name = "epinions";
  config.num_users = Scaled(1929, scale);
  config.num_items = Scaled(9962, scale);
  config.num_ratings = Scaled(12612, scale);
  config.num_social_links = Scaled(41270, scale);
  // Epinions: very sparse ratings, dense social network.
  config.social_degree_alpha = 0.7;
  config.triadic_closure_fraction = 0.35;
  return config;
}

SyntheticConfig LibraryThingProfile(double scale) {
  SyntheticConfig config;
  config.name = "librarything";
  config.num_users = Scaled(1108, scale);
  config.num_items = Scaled(8583, scale);
  config.num_ratings = Scaled(19615, scale);
  config.num_social_links = Scaled(14508, scale);
  config.social_degree_alpha = 0.9;
  config.triadic_closure_fraction = 0.3;
  return config;
}

Dataset GenerateSynthetic(const SyntheticConfig& config, Rng* rng) {
  MSOPDS_CHECK_GT(config.num_users, 0);
  MSOPDS_CHECK_GT(config.num_items, 0);
  MSOPDS_CHECK(rng != nullptr);

  Dataset dataset;
  dataset.name = config.name;
  dataset.num_users = config.num_users;
  dataset.num_items = config.num_items;
  dataset.social = UndirectedGraph(config.num_users);
  dataset.items = UndirectedGraph(config.num_items);

  // Latent per-item quality and per-user bias drive rating values.
  std::vector<double> item_quality(static_cast<size_t>(config.num_items));
  for (double& q : item_quality) q = rng->Normal(3.8, 0.7);
  std::vector<double> user_bias(static_cast<size_t>(config.num_users));
  for (double& b : user_bias) b = rng->Normal(0.0, 0.3);

  // Random permutations so the Zipf head is not always the low ids.
  std::vector<int64_t> user_rank(static_cast<size_t>(config.num_users));
  for (int64_t u = 0; u < config.num_users; ++u)
    user_rank[static_cast<size_t>(u)] = u;
  rng->Shuffle(&user_rank);
  std::vector<int64_t> item_rank(static_cast<size_t>(config.num_items));
  for (int64_t i = 0; i < config.num_items; ++i)
    item_rank[static_cast<size_t>(i)] = i;
  rng->Shuffle(&item_rank);

  // --- Ratings: user by activity Zipf, item by popularity Zipf. ---
  const int64_t max_ratings =
      std::min<int64_t>(config.num_ratings,
                        config.num_users * config.num_items);
  std::unordered_set<uint64_t> rated;
  rated.reserve(static_cast<size_t>(max_ratings) * 2);
  int64_t attempts = 0;
  const int64_t max_attempts = max_ratings * 50;
  while (static_cast<int64_t>(dataset.ratings.size()) < max_ratings &&
         attempts < max_attempts) {
    ++attempts;
    const int64_t u = user_rank[static_cast<size_t>(
        rng->Zipf(config.num_users, config.user_activity_alpha))];
    const int64_t i = item_rank[static_cast<size_t>(
        rng->Zipf(config.num_items, config.item_popularity_alpha))];
    const uint64_t key =
        (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(i);
    if (!rated.insert(key).second) continue;
    const double value =
        DrawRating(config, item_quality[static_cast<size_t>(i)],
                   user_bias[static_cast<size_t>(u)], rng);
    dataset.ratings.push_back({u, i, value});
  }

  // Guarantee every user rates at least one item (keeps training sane).
  std::vector<int64_t> user_count(static_cast<size_t>(config.num_users), 0);
  for (const Rating& r : dataset.ratings)
    ++user_count[static_cast<size_t>(r.user)];
  for (int64_t u = 0; u < config.num_users; ++u) {
    if (user_count[static_cast<size_t>(u)] > 0) continue;
    for (int64_t tries = 0; tries < 100; ++tries) {
      const int64_t i = item_rank[static_cast<size_t>(
          rng->Zipf(config.num_items, config.item_popularity_alpha))];
      const uint64_t key =
          (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(i);
      if (rated.insert(key).second) {
        dataset.ratings.push_back(
            {u, i,
             DrawRating(config, item_quality[static_cast<size_t>(i)],
                        user_bias[static_cast<size_t>(u)], rng)});
        break;
      }
    }
  }

  // --- Social network: Zipf endpoints + triadic closure. ---
  const int64_t max_links = std::min<int64_t>(
      config.num_social_links,
      config.num_users * (config.num_users - 1) / 2);
  int64_t link_attempts = 0;
  const int64_t max_link_attempts = max_links * 60 + 1000;
  while (dataset.social.num_edges() < max_links &&
         link_attempts < max_link_attempts) {
    ++link_attempts;
    const bool close_triangle =
        dataset.social.num_edges() > 8 &&
        rng->Bernoulli(config.triadic_closure_fraction);
    if (close_triangle) {
      const int64_t a = rng->UniformInt(config.num_users);
      const auto& na = dataset.social.Neighbors(a);
      if (na.size() < 2) continue;
      const int64_t b = na[static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(na.size())))];
      const auto& nb = dataset.social.Neighbors(b);
      const int64_t c = nb[static_cast<size_t>(
          rng->UniformInt(static_cast<int64_t>(nb.size())))];
      if (c != a) dataset.social.AddEdge(a, c);
    } else {
      const int64_t a = user_rank[static_cast<size_t>(
          rng->Zipf(config.num_users, config.social_degree_alpha))];
      const int64_t b = user_rank[static_cast<size_t>(
          rng->Zipf(config.num_users, config.social_degree_alpha))];
      dataset.social.AddEdge(a, b);
    }
  }

  // --- Item graph from co-rating overlap (paper construction). ---
  std::vector<RaterRecord> records;
  records.reserve(dataset.ratings.size());
  for (const Rating& r : dataset.ratings)
    records.push_back({r.user, r.item});
  ItemGraphOptions item_options;
  item_options.overlap_fraction = config.item_graph_overlap;
  dataset.items = BuildItemGraph(records, config.num_items, item_options);

  const Status status = dataset.Validate();
  MSOPDS_CHECK(status.ok()) << status.ToString();
  return dataset;
}

}  // namespace msopds
