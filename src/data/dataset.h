#ifndef MSOPDS_DATA_DATASET_H_
#define MSOPDS_DATA_DATASET_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "graph/undirected_graph.h"
#include "util/status.h"

namespace msopds {

/// Valid explicit ratings are integers in [1, 5] (paper's Xi set); the
/// poisoning machinery also uses the continuous range during optimization.
inline constexpr double kMinRating = 1.0;
inline constexpr double kMaxRating = 5.0;

/// One explicit rating record (u, i, r).
struct Rating {
  int64_t user = 0;
  int64_t item = 0;
  double value = 0.0;

  friend bool operator==(const Rating& a, const Rating& b) {
    return a.user == b.user && a.item == b.item && a.value == b.value;
  }
};

/// A heterogeneous recommendation dataset: rating records R, social
/// network G_U over users, and item graph G_I over items (paper Def. 1).
/// Copyable by design — poisoning always operates on a copy.
struct Dataset {
  std::string name;
  int64_t num_users = 0;
  int64_t num_items = 0;
  std::vector<Rating> ratings;
  UndirectedGraph social;
  UndirectedGraph items;

  /// Per-item mean rating (0 for unrated items).
  std::vector<double> ItemAverageRatings() const;

  /// Per-item rating counts.
  std::vector<int64_t> ItemRatingCounts() const;

  /// Per-user rating counts.
  std::vector<int64_t> UserRatingCounts() const;

  /// True if user already rated the item.
  bool HasRating(int64_t user, int64_t item) const;

  /// Structural consistency: index ranges, graph sizes, rating range,
  /// no duplicate (user, item) pairs.
  Status Validate() const;

  /// Short human-readable summary line.
  std::string Summary() const;
};

/// Keeps only users with at least `min_friends` social links and at least
/// `min_ratings` ratings (the paper's preprocessing, footnote 6), then
/// compacts user ids. Items are untouched. Iterates until stable.
Dataset FilterCoreUsers(const Dataset& dataset, int64_t min_friends,
                        int64_t min_ratings);

}  // namespace msopds

#endif  // MSOPDS_DATA_DATASET_H_
