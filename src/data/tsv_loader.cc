#include "data/tsv_loader.h"

#include <unordered_map>

#include "graph/item_graph_builder.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {
namespace {

int64_t Intern(std::unordered_map<int64_t, int64_t>* table, int64_t raw) {
  auto [it, inserted] =
      table->emplace(raw, static_cast<int64_t>(table->size()));
  (void)inserted;
  return it->second;
}

}  // namespace

StatusOr<Dataset> LoadTsv(const std::string& ratings_path,
                          const std::string& trust_path,
                          const TsvOptions& options) {
  // Both files are streamed line-at-a-time (ForEachDelimitedRow), so the
  // loader's peak memory is the interned tables plus one line — it never
  // materializes a whole file. Errors carry the byte offset of the line
  // alongside path:line so huge inputs can be seeked directly.
  //
  // Bad-row tolerance shared across both files: a row that fails to
  // parse is skipped (with its source location logged) until the budget
  // runs out; the row that exhausts it fails the whole load.
  int bad_rows = 0;
  auto tolerate = [&](const std::string& path, int64_t line, int64_t offset,
                      const std::string& reason) {
    ++bad_rows;
    const bool tolerated = bad_rows <= options.max_bad_rows;
    if (tolerated) {
      MSOPDS_LOG(Warning) << path << ":" << line << " (byte " << offset
                          << "): " << reason << " (skipped; bad row "
                          << bad_rows << "/" << options.max_bad_rows
                          << " tolerated)";
    }
    return tolerated;
  };
  auto located = [](const std::string& path, int64_t line, int64_t offset,
                    const std::string& reason) {
    return StrFormat("%s:%lld (byte %lld): %s", path.c_str(),
                     static_cast<long long>(line),
                     static_cast<long long>(offset), reason.c_str());
  };

  std::unordered_map<int64_t, int64_t> user_ids;
  std::unordered_map<int64_t, int64_t> item_ids;
  // Last-write-wins de-duplication of (user, item).
  std::unordered_map<uint64_t, double> values;
  std::vector<uint64_t> order;

  Status scan = ForEachDelimitedRow(
      ratings_path, options.delimiter,
      [&](const DelimitedRow& row, int64_t offset) {
        if (row.fields.size() < 3) {
          const std::string reason = "ratings row needs 3 fields";
          if (tolerate(ratings_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::InvalidArgument(
              located(ratings_path, row.line, offset, reason));
        }
        int64_t raw_user = 0, raw_item = 0;
        double value = 0.0;
        if (!ParseInt64(row.fields[0], &raw_user) ||
            !ParseInt64(row.fields[1], &raw_item) ||
            !ParseDouble(row.fields[2], &value)) {
          const std::string reason = "malformed ratings row";
          if (tolerate(ratings_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::InvalidArgument(
              located(ratings_path, row.line, offset, reason));
        }
        if (value < kMinRating || value > kMaxRating) {
          const std::string reason =
              StrFormat("rating %.3f outside [1,5]", value);
          if (tolerate(ratings_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::OutOfRange(
              located(ratings_path, row.line, offset, reason));
        }
        const int64_t user = Intern(&user_ids, raw_user);
        const int64_t item = Intern(&item_ids, raw_item);
        const uint64_t key =
            (static_cast<uint64_t>(user) << 32) | static_cast<uint64_t>(item);
        if (values.emplace(key, value).second) {
          order.push_back(key);
        } else {
          values[key] = value;
        }
        return Status::Ok();
      });
  if (!scan.ok()) return scan;

  Dataset dataset;
  dataset.name = options.name;
  dataset.num_users = static_cast<int64_t>(user_ids.size());
  dataset.num_items = static_cast<int64_t>(item_ids.size());
  dataset.social = UndirectedGraph(dataset.num_users);
  for (uint64_t key : order) {
    dataset.ratings.push_back({static_cast<int64_t>(key >> 32),
                               static_cast<int64_t>(key & 0xffffffffULL),
                               values.at(key)});
  }

  scan = ForEachDelimitedRow(
      trust_path, options.delimiter,
      [&](const DelimitedRow& row, int64_t offset) {
        if (row.fields.size() < 2) {
          const std::string reason = "trust row needs 2 fields";
          if (tolerate(trust_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::InvalidArgument(
              located(trust_path, row.line, offset, reason));
        }
        int64_t raw_a = 0, raw_b = 0;
        if (!ParseInt64(row.fields[0], &raw_a) ||
            !ParseInt64(row.fields[1], &raw_b)) {
          const std::string reason = "malformed trust row";
          if (tolerate(trust_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::InvalidArgument(
              located(trust_path, row.line, offset, reason));
        }
        // Only keep links between users that appear in the rating records.
        auto ia = user_ids.find(raw_a);
        auto ib = user_ids.find(raw_b);
        if (ia != user_ids.end() && ib != user_ids.end()) {
          dataset.social.AddEdge(ia->second, ib->second);
        }
        return Status::Ok();
      });
  if (!scan.ok()) return scan;

  std::vector<RaterRecord> records;
  records.reserve(dataset.ratings.size());
  for (const Rating& r : dataset.ratings) records.push_back({r.user, r.item});
  dataset.items = BuildItemGraph(records, dataset.num_items);

  const Status status = dataset.Validate();
  if (!status.ok()) return status;
  return dataset;
}

StatusOr<Dataset> LoadTsv(const std::string& ratings_path,
                          const std::string& trust_path, char delimiter,
                          const std::string& name) {
  TsvOptions options;
  options.delimiter = delimiter;
  options.name = name;
  return LoadTsv(ratings_path, trust_path, options);
}

Status SaveTsv(const Dataset& dataset, const std::string& ratings_path,
               const std::string& trust_path, char delimiter) {
  std::vector<std::vector<std::string>> rating_rows;
  rating_rows.reserve(dataset.ratings.size());
  for (const Rating& r : dataset.ratings) {
    rating_rows.push_back({StrFormat("%lld", static_cast<long long>(r.user)),
                           StrFormat("%lld", static_cast<long long>(r.item)),
                           StrFormat("%.0f", r.value)});
  }
  Status status = WriteDelimited(ratings_path, rating_rows, delimiter);
  if (!status.ok()) return status;

  std::vector<std::vector<std::string>> trust_rows;
  for (const auto& [a, b] : dataset.social.Edges()) {
    trust_rows.push_back({StrFormat("%lld", static_cast<long long>(a)),
                          StrFormat("%lld", static_cast<long long>(b))});
  }
  return WriteDelimited(trust_path, trust_rows, delimiter);
}

}  // namespace msopds
