#include "data/tsv_loader.h"

#include <unordered_map>

#include "graph/item_graph_builder.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace msopds {
namespace {

int64_t Intern(std::unordered_map<int64_t, int64_t>* table, int64_t raw) {
  auto [it, inserted] =
      table->emplace(raw, static_cast<int64_t>(table->size()));
  (void)inserted;
  return it->second;
}

}  // namespace

StatusOr<Dataset> LoadTsv(const std::string& ratings_path,
                          const std::string& trust_path, char delimiter,
                          const std::string& name) {
  auto rating_rows = ReadDelimited(ratings_path, delimiter);
  if (!rating_rows.ok()) return rating_rows.status();
  auto trust_rows = ReadDelimited(trust_path, delimiter);
  if (!trust_rows.ok()) return trust_rows.status();

  std::unordered_map<int64_t, int64_t> user_ids;
  std::unordered_map<int64_t, int64_t> item_ids;
  // Last-write-wins de-duplication of (user, item).
  std::unordered_map<uint64_t, double> values;
  std::vector<uint64_t> order;

  for (const auto& row : rating_rows.value()) {
    if (row.size() < 3) {
      return Status::InvalidArgument("ratings row needs 3 fields");
    }
    int64_t raw_user = 0, raw_item = 0;
    double value = 0.0;
    if (!ParseInt64(row[0], &raw_user) || !ParseInt64(row[1], &raw_item) ||
        !ParseDouble(row[2], &value)) {
      return Status::InvalidArgument("malformed ratings row");
    }
    if (value < kMinRating || value > kMaxRating) {
      return Status::OutOfRange(StrFormat("rating %.3f outside [1,5]", value));
    }
    const int64_t user = Intern(&user_ids, raw_user);
    const int64_t item = Intern(&item_ids, raw_item);
    const uint64_t key =
        (static_cast<uint64_t>(user) << 32) | static_cast<uint64_t>(item);
    if (values.emplace(key, value).second) {
      order.push_back(key);
    } else {
      values[key] = value;
    }
  }

  Dataset dataset;
  dataset.name = name;
  dataset.num_users = static_cast<int64_t>(user_ids.size());
  dataset.num_items = static_cast<int64_t>(item_ids.size());
  dataset.social = UndirectedGraph(dataset.num_users);
  for (uint64_t key : order) {
    dataset.ratings.push_back({static_cast<int64_t>(key >> 32),
                               static_cast<int64_t>(key & 0xffffffffULL),
                               values.at(key)});
  }

  for (const auto& row : trust_rows.value()) {
    if (row.size() < 2) {
      return Status::InvalidArgument("trust row needs 2 fields");
    }
    int64_t raw_a = 0, raw_b = 0;
    if (!ParseInt64(row[0], &raw_a) || !ParseInt64(row[1], &raw_b)) {
      return Status::InvalidArgument("malformed trust row");
    }
    // Only keep links between users that appear in the rating records.
    auto ia = user_ids.find(raw_a);
    auto ib = user_ids.find(raw_b);
    if (ia == user_ids.end() || ib == user_ids.end()) continue;
    dataset.social.AddEdge(ia->second, ib->second);
  }

  std::vector<RaterRecord> records;
  records.reserve(dataset.ratings.size());
  for (const Rating& r : dataset.ratings) records.push_back({r.user, r.item});
  dataset.items = BuildItemGraph(records, dataset.num_items);

  const Status status = dataset.Validate();
  if (!status.ok()) return status;
  return dataset;
}

Status SaveTsv(const Dataset& dataset, const std::string& ratings_path,
               const std::string& trust_path, char delimiter) {
  std::vector<std::vector<std::string>> rating_rows;
  rating_rows.reserve(dataset.ratings.size());
  for (const Rating& r : dataset.ratings) {
    rating_rows.push_back({StrFormat("%lld", static_cast<long long>(r.user)),
                           StrFormat("%lld", static_cast<long long>(r.item)),
                           StrFormat("%.0f", r.value)});
  }
  Status status = WriteDelimited(ratings_path, rating_rows, delimiter);
  if (!status.ok()) return status;

  std::vector<std::vector<std::string>> trust_rows;
  for (const auto& [a, b] : dataset.social.Edges()) {
    trust_rows.push_back({StrFormat("%lld", static_cast<long long>(a)),
                          StrFormat("%lld", static_cast<long long>(b))});
  }
  return WriteDelimited(trust_path, trust_rows, delimiter);
}

}  // namespace msopds
