#include "data/demographics.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace msopds {

std::vector<Demographics> SampleDemographics(
    const Dataset& dataset, int64_t num_players, Rng* rng,
    const DemographicsOptions& options) {
  MSOPDS_CHECK_GE(num_players, 1);
  MSOPDS_CHECK(rng != nullptr);
  MSOPDS_CHECK_GT(dataset.num_users, 1);
  MSOPDS_CHECK_GT(dataset.num_items, 2);

  const int64_t ta_size = std::max<int64_t>(
      1, static_cast<int64_t>(options.target_audience_fraction *
                              static_cast<double>(dataset.num_users)));
  const int64_t base_size =
      std::min<int64_t>(options.customer_base_size, dataset.num_users);
  const int64_t compete_size = std::max<int64_t>(
      2, std::min<int64_t>(options.compete_items, dataset.num_items / 2));
  const int64_t product_size = std::max<int64_t>(
      1,
      std::min<int64_t>(options.product_items,
                        dataset.num_items - compete_size));

  // Shared market: target audience + competing pool + target item.
  std::vector<int64_t> audience =
      rng->SampleWithoutReplacement(dataset.num_users, ta_size);

  std::vector<int64_t> compete_pool =
      rng->SampleWithoutReplacement(dataset.num_items, compete_size);
  const std::vector<double> averages = dataset.ItemAverageRatings();
  const std::vector<int64_t> counts = dataset.ItemRatingCounts();
  // The lowest-average-rated item of the pool becomes the target
  // (unrated items count as hardest to promote: average 0).
  size_t target_pos = 0;
  for (size_t i = 1; i < compete_pool.size(); ++i) {
    const double best = averages[static_cast<size_t>(compete_pool[target_pos])];
    const double cand = averages[static_cast<size_t>(compete_pool[i])];
    if (cand < best) target_pos = i;
  }
  const int64_t target_item = compete_pool[target_pos];
  compete_pool.erase(compete_pool.begin() +
                     static_cast<std::ptrdiff_t>(target_pos));

  std::unordered_set<int64_t> excluded(compete_pool.begin(),
                                       compete_pool.end());
  excluded.insert(target_item);
  std::vector<int64_t> product_pool;
  for (int64_t i = 0; i < dataset.num_items; ++i) {
    if (excluded.count(i) == 0) product_pool.push_back(i);
  }

  std::vector<Demographics> players;
  players.reserve(static_cast<size_t>(num_players));
  for (int64_t p = 0; p < num_players; ++p) {
    Demographics demo;
    demo.target_audience = audience;
    demo.compete_items = compete_pool;
    demo.target_item = target_item;
    demo.customer_base =
        rng->SampleWithoutReplacement(dataset.num_users, base_size);
    demo.product_items = rng->SampleFrom(
        product_pool,
        std::min<int64_t>(product_size,
                          static_cast<int64_t>(product_pool.size())));
    players.push_back(std::move(demo));
  }
  return players;
}

}  // namespace msopds
