#ifndef MSOPDS_DATA_SYNTHETIC_H_
#define MSOPDS_DATA_SYNTHETIC_H_

#include <array>
#include <string>

#include "data/dataset.h"
#include "util/rng.h"

namespace msopds {

/// Configuration of the synthetic heterogeneous-dataset generator.
///
/// The paper evaluates on Ciao, Epinions, and LibraryThing dumps that are
/// not redistributable in this offline build, so the generator synthesizes
/// datasets matching each dump's published aggregate statistics (user/item
/// counts, rating volume, social-link volume, skewed rating histogram,
/// power-law activity/popularity). DESIGN.md §4 documents why this
/// substitution preserves the attack dynamics under study.
struct SyntheticConfig {
  std::string name = "synthetic";
  int64_t num_users = 500;
  int64_t num_items = 800;
  int64_t num_ratings = 8000;
  int64_t num_social_links = 9000;

  /// P(rating == k) for k = 1..5; normalized internally. Default is the
  /// J-shaped histogram typical of e-commerce ratings.
  std::array<double, 5> rating_histogram = {0.05, 0.07, 0.13, 0.30, 0.45};

  /// Zipf exponents for user activity, item popularity, and social-degree
  /// propensity.
  double user_activity_alpha = 0.9;
  double item_popularity_alpha = 1.0;
  double social_degree_alpha = 0.8;

  /// Fraction of social edges closed as triangles (friend-of-friend),
  /// giving realistic clustering.
  double triadic_closure_fraction = 0.3;

  /// Std-dev of per-(user,item) rating noise around item quality + user
  /// bias before discretization.
  double rating_noise = 0.8;

  /// Jaccard threshold for the item graph (paper: shares over 50%).
  double item_graph_overlap = 0.5;
};

/// Profiles reproducing the paper's three datasets (§VI-A1), scaled by
/// `scale` (1.0 = published size; default experiments use a reduced scale
/// so the whole suite runs on one CPU core).
SyntheticConfig CiaoProfile(double scale = 1.0);
SyntheticConfig EpinionsProfile(double scale = 1.0);
SyntheticConfig LibraryThingProfile(double scale = 1.0);

/// Generates a dataset (ratings + social network + co-rating item graph).
/// Deterministic given (config, rng state). The result passes
/// Dataset::Validate().
Dataset GenerateSynthetic(const SyntheticConfig& config, Rng* rng);

}  // namespace msopds

#endif  // MSOPDS_DATA_SYNTHETIC_H_
