#ifndef MSOPDS_DATA_DEMOGRAPHICS_H_
#define MSOPDS_DATA_DEMOGRAPHICS_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace msopds {

/// Per-player marketing demographics (paper §VI-A2): the target audience
/// U_TA and competing items I_compete are shared across players (everyone
/// fights over the same market); the customer base U_base and company
/// products I_product are sampled per player.
struct Demographics {
  /// Users the attacker wants to reach (U_TA, 5% of users by default).
  std::vector<int64_t> target_audience;
  /// Real users the player can hire (U_base, 100 by default).
  std::vector<int64_t> customer_base;
  /// The player's promoted item i_t.
  int64_t target_item = 0;
  /// Items competing with the target (I_compete, 50 by default).
  std::vector<int64_t> compete_items;
  /// The player's own catalogue (I_product, 100 by default).
  std::vector<int64_t> product_items;
};

/// Knobs for SampleDemographics, defaulting to the paper's settings.
struct DemographicsOptions {
  double target_audience_fraction = 0.05;
  int64_t customer_base_size = 100;
  int64_t compete_items = 50;
  int64_t product_items = 100;
};

/// Samples the shared market plus one Demographics per player.
/// Following §VI-A2: U_TA is a random 5% of users; 50 random items form
/// the competing pool whose lowest-average-rated member becomes the
/// attacker's target item (and is removed from the pool); each player gets
/// an independent customer base and product catalogue. Player 0 is the
/// attacker; players 1..n are opponents who share the same target item
/// (they demote what the attacker promotes).
std::vector<Demographics> SampleDemographics(
    const Dataset& dataset, int64_t num_players, Rng* rng,
    const DemographicsOptions& options = {});

}  // namespace msopds

#endif  // MSOPDS_DATA_DEMOGRAPHICS_H_
