#ifndef MSOPDS_DATA_TSV_LOADER_H_
#define MSOPDS_DATA_TSV_LOADER_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace msopds {

/// Options for LoadTsv.
struct TsvOptions {
  char delimiter = '\t';
  std::string name = "tsv";
  /// Malformed rows (wrong field count, unparsable numbers, out-of-range
  /// ratings) tolerated across both files before the load fails. Each
  /// skipped row is logged with its "path:line" location. 0 = strict:
  /// the first bad row fails the load (the default, and the historical
  /// behaviour).
  int max_bad_rows = 0;
};

/// Loads a real heterogeneous dataset from two delimiter-separated files:
///  - ratings: lines of "user item rating" (rating in [1, 5]);
///  - trust:   lines of "user user" social links.
/// Raw ids are compacted to dense [0, n) indices; duplicate (user, item)
/// pairs keep the last value; the item graph is built from co-rating
/// overlap exactly as in GenerateSynthetic. This is the path for running
/// the suite on the actual Ciao/Epinions/LibraryThing dumps when they are
/// available (they are not bundled). Errors are reported as
/// "path:line: reason"; real dumps with a few corrupt lines can be
/// loaded by raising options.max_bad_rows.
StatusOr<Dataset> LoadTsv(const std::string& ratings_path,
                          const std::string& trust_path,
                          const TsvOptions& options);

/// Legacy convenience overload (strict: any bad row fails the load).
StatusOr<Dataset> LoadTsv(const std::string& ratings_path,
                          const std::string& trust_path, char delimiter = '\t',
                          const std::string& name = "tsv");

/// Writes a dataset back to the same two-file format (for round-trips and
/// for exporting synthetic datasets).
Status SaveTsv(const Dataset& dataset, const std::string& ratings_path,
               const std::string& trust_path, char delimiter = '\t');

}  // namespace msopds

#endif  // MSOPDS_DATA_TSV_LOADER_H_
