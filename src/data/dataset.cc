#include "data/dataset.h"

#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {
namespace {

uint64_t EncodePair(int64_t user, int64_t item) {
  return (static_cast<uint64_t>(user) << 32) | static_cast<uint64_t>(item);
}

}  // namespace

std::vector<double> Dataset::ItemAverageRatings() const {
  std::vector<double> sum(static_cast<size_t>(num_items), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(num_items), 0);
  for (const Rating& r : ratings) {
    sum[static_cast<size_t>(r.item)] += r.value;
    ++count[static_cast<size_t>(r.item)];
  }
  for (int64_t i = 0; i < num_items; ++i) {
    if (count[static_cast<size_t>(i)] > 0) {
      sum[static_cast<size_t>(i)] /=
          static_cast<double>(count[static_cast<size_t>(i)]);
    }
  }
  return sum;
}

std::vector<int64_t> Dataset::ItemRatingCounts() const {
  std::vector<int64_t> count(static_cast<size_t>(num_items), 0);
  for (const Rating& r : ratings) ++count[static_cast<size_t>(r.item)];
  return count;
}

std::vector<int64_t> Dataset::UserRatingCounts() const {
  std::vector<int64_t> count(static_cast<size_t>(num_users), 0);
  for (const Rating& r : ratings) ++count[static_cast<size_t>(r.user)];
  return count;
}

bool Dataset::HasRating(int64_t user, int64_t item) const {
  for (const Rating& r : ratings) {
    if (r.user == user && r.item == item) return true;
  }
  return false;
}

Status Dataset::Validate() const {
  if (social.num_nodes() != num_users) {
    return Status::FailedPrecondition(StrFormat(
        "social graph has %lld nodes, expected %lld",
        static_cast<long long>(social.num_nodes()),
        static_cast<long long>(num_users)));
  }
  if (items.num_nodes() != num_items) {
    return Status::FailedPrecondition(StrFormat(
        "item graph has %lld nodes, expected %lld",
        static_cast<long long>(items.num_nodes()),
        static_cast<long long>(num_items)));
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(ratings.size());
  for (const Rating& r : ratings) {
    if (r.user < 0 || r.user >= num_users) {
      return Status::OutOfRange("rating user id out of range");
    }
    if (r.item < 0 || r.item >= num_items) {
      return Status::OutOfRange("rating item id out of range");
    }
    if (r.value < kMinRating || r.value > kMaxRating) {
      return Status::OutOfRange(
          StrFormat("rating value %.3f outside [1, 5]", r.value));
    }
    if (!seen.insert(EncodePair(r.user, r.item)).second) {
      return Status::FailedPrecondition(StrFormat(
          "duplicate rating (%lld, %lld)", static_cast<long long>(r.user),
          static_cast<long long>(r.item)));
    }
  }
  return Status::Ok();
}

std::string Dataset::Summary() const {
  return StrFormat(
      "%s: %lld users, %lld items, %lld ratings, %lld social links, %lld "
      "item links",
      name.c_str(), static_cast<long long>(num_users),
      static_cast<long long>(num_items),
      static_cast<long long>(ratings.size()),
      static_cast<long long>(social.num_edges()),
      static_cast<long long>(items.num_edges()));
}

Dataset FilterCoreUsers(const Dataset& dataset, int64_t min_friends,
                        int64_t min_ratings) {
  std::vector<char> keep(static_cast<size_t>(dataset.num_users), 1);
  // Iterate: removing users lowers friend counts of the remainder.
  bool changed = true;
  std::vector<int64_t> rating_count = dataset.UserRatingCounts();
  while (changed) {
    changed = false;
    for (int64_t u = 0; u < dataset.num_users; ++u) {
      if (!keep[static_cast<size_t>(u)]) continue;
      int64_t friends = 0;
      for (int64_t v : dataset.social.Neighbors(u)) {
        if (keep[static_cast<size_t>(v)]) ++friends;
      }
      if (friends < min_friends ||
          rating_count[static_cast<size_t>(u)] < min_ratings) {
        keep[static_cast<size_t>(u)] = 0;
        changed = true;
      }
    }
  }

  std::unordered_map<int64_t, int64_t> remap;
  int64_t next = 0;
  for (int64_t u = 0; u < dataset.num_users; ++u) {
    if (keep[static_cast<size_t>(u)]) remap[u] = next++;
  }

  Dataset out;
  out.name = dataset.name + "-core";
  out.num_users = next;
  out.num_items = dataset.num_items;
  out.items = dataset.items;
  out.social = UndirectedGraph(next);
  for (const auto& [a, b] : dataset.social.Edges()) {
    auto ia = remap.find(a);
    auto ib = remap.find(b);
    if (ia != remap.end() && ib != remap.end()) {
      out.social.AddEdge(ia->second, ib->second);
    }
  }
  for (const Rating& r : dataset.ratings) {
    auto it = remap.find(r.user);
    if (it != remap.end()) {
      out.ratings.push_back({it->second, r.item, r.value});
    }
  }
  return out;
}

}  // namespace msopds
