#include "data/split.h"

#include <unordered_map>

#include "util/logging.h"

namespace msopds {

RatingSplit SplitRatings(const Dataset& dataset, Rng* rng,
                         const SplitOptions& options) {
  MSOPDS_CHECK(rng != nullptr);
  MSOPDS_CHECK_GE(options.test_fraction, 0.0);
  MSOPDS_CHECK_LT(options.test_fraction, 1.0);

  const int64_t total = static_cast<int64_t>(dataset.ratings.size());
  std::vector<int64_t> order(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) order[static_cast<size_t>(i)] = i;
  rng->Shuffle(&order);

  const int64_t test_target =
      static_cast<int64_t>(options.test_fraction * static_cast<double>(total));

  RatingSplit split;
  std::unordered_map<int64_t, int64_t> train_count;
  if (options.keep_one_per_user) {
    // Pass 1: reserve one training rating per user (the last in the
    // shuffled order), so pass 2 can safely hold the rest out.
    for (int64_t idx : order) {
      const Rating& r = dataset.ratings[static_cast<size_t>(idx)];
      ++train_count[r.user];
    }
  }

  int64_t test_taken = 0;
  for (int64_t idx : order) {
    const Rating& r = dataset.ratings[static_cast<size_t>(idx)];
    const bool can_hold_out =
        !options.keep_one_per_user || train_count[r.user] > 1;
    if (test_taken < test_target && can_hold_out) {
      split.test.push_back(r);
      ++test_taken;
      if (options.keep_one_per_user) --train_count[r.user];
    } else {
      split.train.push_back(r);
    }
  }
  return split;
}

}  // namespace msopds
