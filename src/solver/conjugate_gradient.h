#ifndef MSOPDS_SOLVER_CONJUGATE_GRADIENT_H_
#define MSOPDS_SOLVER_CONJUGATE_GRADIENT_H_

#include <functional>
#include <string>

#include "tensor/tensor.h"

namespace msopds {

/// A matrix-free linear operator y = A x over rank-1 tensors.
using LinearOperator = std::function<Tensor(const Tensor&)>;

/// Options for the conjugate gradient solve.
struct CgOptions {
  /// Maximum CG iterations (per attempt).
  int max_iterations = 32;
  /// Stop when ||r||_2 <= tolerance * max(1, ||b||_2).
  double relative_tolerance = 1e-6;
  /// Tikhonov damping: solves (A + damping I) x = b. MSO uses a small
  /// damping so the opponent Hessian solve (Algorithm 1 step 9) stays
  /// well-posed even when the Hessian is near-singular.
  double damping = 0.0;

  // --- Breakdown recovery ---
  /// On breakdown — a non-finite residual/curvature or p·Ap <= 0, i.e.
  /// the operator is not positive definite at this damping — the solve
  /// restarts with damping escalated by this factor, up to
  /// `max_damping_retries` restarts.
  double damping_escalation = 10.0;
  int max_damping_retries = 2;
  /// Damping installed by the first escalation when `damping` is 0.
  double min_recovery_damping = 1e-8;
  /// When every damped restart also breaks down and the system is at
  /// most this large, the (damped) operator is materialized column by
  /// column and handed to the dense Gaussian-elimination solver as a
  /// final fallback. 0 disables the fallback.
  int64_t dense_fallback_size = 256;
};

/// How a solve ended. Anything except kBreakdown yields a usable
/// (finite) solution; kBreakdown means even the recovery ladder failed
/// and the solution is the best finite iterate (possibly zero).
enum class CgOutcome {
  kConverged = 0,
  kMaxIterations = 1,
  kDenseFallback = 2,
  kBreakdown = 3,
};

/// Human-readable outcome name.
std::string CgOutcomeToString(CgOutcome outcome);

/// Result of a conjugate gradient solve.
struct CgResult {
  Tensor solution;
  /// Total CG iterations across all attempts.
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
  CgOutcome outcome = CgOutcome::kMaxIterations;
  /// Breakdown events observed across all attempts.
  int breakdowns = 0;
  /// Damping-escalation restarts performed.
  int damping_retries = 0;
  /// Effective damping of the attempt that produced `solution`.
  double damping_used = 0.0;
};

/// Solves (A + damping I) x = b for symmetric positive (semi-)definite A
/// given only matrix-vector products. This implements Algorithm 1 step 9
/// of the paper: solving xi * (d^2 L^q / dX^q^2) = dL^p / dX^q where the
/// Hessian is only available through Hessian-vector products.
///
/// Resilience: a breakdown (NaN from the operator, or an indefinite
/// curvature p·Ap <= 0) no longer returns garbage silently — the solve
/// escalates damping, then falls back to a dense solve for small
/// systems, and every outcome is reported in CgResult. A non-finite
/// right-hand side is rejected up front as kBreakdown with a zero
/// solution. The FaultInjector's solver hook can simulate an operator
/// breakdown on the first application to exercise this ladder.
CgResult ConjugateGradient(const LinearOperator& apply, const Tensor& b,
                           const CgOptions& options = CgOptions());

}  // namespace msopds

#endif  // MSOPDS_SOLVER_CONJUGATE_GRADIENT_H_
