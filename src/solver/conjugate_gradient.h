#ifndef MSOPDS_SOLVER_CONJUGATE_GRADIENT_H_
#define MSOPDS_SOLVER_CONJUGATE_GRADIENT_H_

#include <functional>

#include "tensor/tensor.h"

namespace msopds {

/// A matrix-free linear operator y = A x over rank-1 tensors.
using LinearOperator = std::function<Tensor(const Tensor&)>;

/// Options for the conjugate gradient solve.
struct CgOptions {
  /// Maximum CG iterations.
  int max_iterations = 32;
  /// Stop when ||r||_2 <= tolerance * max(1, ||b||_2).
  double relative_tolerance = 1e-6;
  /// Tikhonov damping: solves (A + damping I) x = b. MSO uses a small
  /// damping so the opponent Hessian solve (Algorithm 1 step 9) stays
  /// well-posed even when the Hessian is near-singular.
  double damping = 0.0;
};

/// Result of a conjugate gradient solve.
struct CgResult {
  Tensor solution;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solves (A + damping I) x = b for symmetric positive (semi-)definite A
/// given only matrix-vector products. This implements Algorithm 1 step 9 of
/// the paper: solving xi * (d^2 L^q / dX^q^2) = dL^p / dX^q where the
/// Hessian is only available through Hessian-vector products.
CgResult ConjugateGradient(const LinearOperator& apply, const Tensor& b,
                           const CgOptions& options = CgOptions());

}  // namespace msopds

#endif  // MSOPDS_SOLVER_CONJUGATE_GRADIENT_H_
