#include "solver/dense_solver.h"

#include <cmath>

#include "util/logging.h"

namespace msopds {

StatusOr<Tensor> SolveDense(const Tensor& a, const Tensor& b) {
  MSOPDS_CHECK_EQ(a.rank(), 2);
  MSOPDS_CHECK_EQ(b.rank(), 1);
  const int64_t n = a.dim(0);
  MSOPDS_CHECK_EQ(a.dim(1), n);
  MSOPDS_CHECK_EQ(b.dim(0), n);

  Tensor lu = a.Clone();
  Tensor x = b.Clone();
  for (int64_t col = 0; col < n; ++col) {
    // Partial pivot.
    int64_t pivot = col;
    double best = std::fabs(lu.at(col, col));
    for (int64_t row = col + 1; row < n; ++row) {
      const double candidate = std::fabs(lu.at(row, col));
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("matrix is numerically singular");
    }
    if (pivot != col) {
      for (int64_t j = 0; j < n; ++j) std::swap(lu.at(col, j), lu.at(pivot, j));
      std::swap(x.at(col), x.at(pivot));
    }
    for (int64_t row = col + 1; row < n; ++row) {
      const double factor = lu.at(row, col) / lu.at(col, col);
      if (factor == 0.0) continue;
      for (int64_t j = col; j < n; ++j)
        lu.at(row, j) -= factor * lu.at(col, j);
      x.at(row) -= factor * x.at(col);
    }
  }
  for (int64_t row = n - 1; row >= 0; --row) {
    double sum = x.at(row);
    for (int64_t j = row + 1; j < n; ++j) sum -= lu.at(row, j) * x.at(j);
    x.at(row) = sum / lu.at(row, row);
  }
  return x;
}

Tensor Materialize(const std::function<Tensor(const Tensor&)>& apply,
                   int64_t size) {
  Tensor out({size, size});
  for (int64_t j = 0; j < size; ++j) {
    Tensor basis = Tensor::Zeros({size});
    basis.at(j) = 1.0;
    const Tensor column = apply(basis);
    MSOPDS_CHECK_EQ(column.size(), size);
    for (int64_t i = 0; i < size; ++i) out.at(i, j) = column.at(i);
  }
  return out;
}

}  // namespace msopds
