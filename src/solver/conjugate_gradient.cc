#include "solver/conjugate_gradient.h"

#include <cmath>

#include "util/logging.h"

namespace msopds {
namespace {

double DotProduct(const Tensor& a, const Tensor& b) {
  MSOPDS_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) s += a.data()[i] * b.data()[i];
  return s;
}

void Axpy(double alpha, const Tensor& x, Tensor* y) {
  for (int64_t i = 0; i < y->size(); ++i)
    y->data()[i] += alpha * x.data()[i];
}

}  // namespace

CgResult ConjugateGradient(const LinearOperator& apply, const Tensor& b,
                           const CgOptions& options) {
  MSOPDS_CHECK_EQ(b.rank(), 1);
  MSOPDS_CHECK_GT(options.max_iterations, 0);

  auto apply_damped = [&](const Tensor& x) {
    Tensor y = apply(x);
    MSOPDS_CHECK(y.SameShape(x)) << "linear operator changed shape";
    if (options.damping != 0.0) Axpy(options.damping, x, &y);
    return y;
  };

  CgResult result;
  result.solution = Tensor::Zeros(b.shape());
  Tensor residual = b.Clone();
  Tensor direction = b.Clone();
  double rho = DotProduct(residual, residual);
  const double b_norm = std::sqrt(DotProduct(b, b));
  const double threshold =
      options.relative_tolerance * std::max(1.0, b_norm);

  if (std::sqrt(rho) <= threshold) {
    result.converged = true;
    result.residual_norm = std::sqrt(rho);
    return result;
  }

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    const Tensor ad = apply_damped(direction);
    const double curvature = DotProduct(direction, ad);
    if (!(std::fabs(curvature) > 1e-300)) {
      // Zero/indefinite curvature: return the best iterate so far.
      break;
    }
    const double alpha = rho / curvature;
    Axpy(alpha, direction, &result.solution);
    Axpy(-alpha, ad, &residual);
    const double rho_next = DotProduct(residual, residual);
    result.iterations = iteration + 1;
    if (std::sqrt(rho_next) <= threshold) {
      result.converged = true;
      rho = rho_next;
      break;
    }
    const double beta = rho_next / rho;
    rho = rho_next;
    for (int64_t i = 0; i < direction.size(); ++i) {
      direction.data()[i] = residual.data()[i] + beta * direction.data()[i];
    }
  }
  result.residual_norm = std::sqrt(rho);
  return result;
}

}  // namespace msopds
