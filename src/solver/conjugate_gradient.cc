#include "solver/conjugate_gradient.h"

#include <cmath>
#include <limits>
#include <utility>

#include "solver/dense_solver.h"
#include "util/fault.h"
#include "util/health.h"
#include "util/logging.h"

namespace msopds {
namespace {

double DotProduct(const Tensor& a, const Tensor& b) {
  MSOPDS_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) s += a.data()[i] * b.data()[i];
  return s;
}

void Axpy(double alpha, const Tensor& x, Tensor* y) {
  for (int64_t i = 0; i < y->size(); ++i)
    y->data()[i] += alpha * x.data()[i];
}

enum class AttemptEnd { kConverged, kMaxIterations, kBreakdown };

struct Attempt {
  AttemptEnd end = AttemptEnd::kMaxIterations;
  Tensor solution;
  int iterations = 0;
  double residual_norm = 0.0;
};

// One plain CG run at a fixed damping. Reports kBreakdown on a
// non-finite residual/curvature or an indefinite curvature p.Ap <= 0;
// the solution is then the last iterate before the breakdown.
Attempt RunAttempt(const LinearOperator& apply, const Tensor& b,
                   double damping, int max_iterations, double threshold) {
  auto apply_damped = [&](const Tensor& x) {
    Tensor y = apply(x);
    MSOPDS_CHECK(y.SameShape(x)) << "linear operator changed shape";
    if (damping != 0.0) Axpy(damping, x, &y);
    return y;
  };

  Attempt attempt;
  attempt.solution = Tensor::Zeros(b.shape());
  Tensor residual = b.Clone();
  Tensor direction = b.Clone();
  double rho = DotProduct(residual, residual);

  if (std::sqrt(rho) <= threshold) {
    attempt.end = AttemptEnd::kConverged;
    attempt.residual_norm = std::sqrt(rho);
    return attempt;
  }

  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    const Tensor ad = apply_damped(direction);
    const double curvature = DotProduct(direction, ad);
    if (!std::isfinite(curvature) || curvature < 0.0) {
      attempt.end = AttemptEnd::kBreakdown;
      break;
    }
    if (!(curvature > 1e-300)) {
      // Numerically zero curvature: return the best iterate so far.
      break;
    }
    const double alpha = rho / curvature;
    Axpy(alpha, direction, &attempt.solution);
    Axpy(-alpha, ad, &residual);
    const double rho_next = DotProduct(residual, residual);
    attempt.iterations = iteration + 1;
    if (!std::isfinite(rho_next)) {
      attempt.end = AttemptEnd::kBreakdown;
      rho = rho_next;
      break;
    }
    if (std::sqrt(rho_next) <= threshold) {
      attempt.end = AttemptEnd::kConverged;
      rho = rho_next;
      break;
    }
    const double beta = rho_next / rho;
    rho = rho_next;
    for (int64_t i = 0; i < direction.size(); ++i) {
      direction.data()[i] = residual.data()[i] + beta * direction.data()[i];
    }
  }
  attempt.residual_norm = std::sqrt(rho);
  return attempt;
}

}  // namespace

std::string CgOutcomeToString(CgOutcome outcome) {
  switch (outcome) {
    case CgOutcome::kConverged:
      return "converged";
    case CgOutcome::kMaxIterations:
      return "max-iterations";
    case CgOutcome::kDenseFallback:
      return "dense-fallback";
    case CgOutcome::kBreakdown:
      return "breakdown";
  }
  return "unknown";
}

CgResult ConjugateGradient(const LinearOperator& apply, const Tensor& b,
                           const CgOptions& options) {
  MSOPDS_CHECK_EQ(b.rank(), 1);
  MSOPDS_CHECK_GT(options.max_iterations, 0);
  MSOPDS_CHECK_GE(options.max_damping_retries, 0);
  MSOPDS_CHECK_GT(options.damping_escalation, 1.0);

  CgResult result;
  result.solution = Tensor::Zeros(b.shape());
  result.damping_used = options.damping;
  if (!AllFinite(b)) {
    // Nothing downstream of a non-finite right-hand side is salvageable;
    // surface the breakdown instead of iterating on NaNs.
    result.outcome = CgOutcome::kBreakdown;
    result.breakdowns = 1;
    result.residual_norm = std::numeric_limits<double>::quiet_NaN();
    MSOPDS_LOG(Warning) << "CG: non-finite right-hand side rejected";
    return result;
  }

  // Simulated operator breakdown (resilience drills): the first operator
  // application of this solve returns NaNs; recovery then proceeds
  // against the real operator.
  const bool inject_breakdown = FaultInjector::Global().ShouldBreakSolver();
  bool injected = false;
  LinearOperator effective = apply;
  if (inject_breakdown) {
    effective = [&apply, &injected](const Tensor& x) {
      if (!injected) {
        injected = true;
        Tensor y = Tensor::Zeros(x.shape());
        for (int64_t i = 0; i < y.size(); ++i) {
          y.data()[i] = std::numeric_limits<double>::quiet_NaN();
        }
        return y;
      }
      return apply(x);
    };
  }

  const double b_norm = std::sqrt(DotProduct(b, b));
  const double threshold =
      options.relative_tolerance * std::max(1.0, b_norm);

  double damping = options.damping;
  for (int attempt = 0; attempt <= options.max_damping_retries; ++attempt) {
    if (attempt > 0) {
      damping = damping == 0.0 ? options.min_recovery_damping
                               : damping * options.damping_escalation;
      ++result.damping_retries;
    }
    Attempt run = RunAttempt(effective, b, damping,
                             options.max_iterations, threshold);
    result.iterations += run.iterations;
    if (run.end != AttemptEnd::kBreakdown) {
      result.solution = std::move(run.solution);
      result.residual_norm = run.residual_norm;
      result.converged = run.end == AttemptEnd::kConverged;
      result.outcome = result.converged ? CgOutcome::kConverged
                                        : CgOutcome::kMaxIterations;
      result.damping_used = damping;
      if (result.breakdowns > 0) {
        MSOPDS_LOG(Warning)
            << "CG recovered from breakdown with damping " << damping
            << " after " << result.breakdowns << " failed attempt(s)";
      }
      return result;
    }
    ++result.breakdowns;
    if (AllFinite(run.solution)) {
      // Remember the best finite iterate in case every ladder rung fails.
      result.solution = std::move(run.solution);
      result.residual_norm = run.residual_norm;
      result.damping_used = damping;
    }
  }

  // Final fallback: materialize the damped operator and solve densely.
  // Only sensible for small systems (size applications of the operator).
  if (options.dense_fallback_size > 0 &&
      b.size() <= options.dense_fallback_size) {
    Tensor dense = Materialize(effective, b.size());
    if (options.damping != 0.0) {
      for (int64_t i = 0; i < b.size(); ++i) {
        dense.at(i, i) += options.damping;
      }
    }
    if (AllFinite(dense)) {
      auto solved = SolveDense(dense, b);
      if (solved.ok() && AllFinite(solved.value())) {
        result.solution = std::move(solved).value();
        // One extra application to report the true residual.
        Tensor residual = b.Clone();
        Tensor ax = effective(result.solution);
        if (options.damping != 0.0) {
          Axpy(options.damping, result.solution, &ax);
        }
        Axpy(-1.0, ax, &residual);
        result.residual_norm = std::sqrt(DotProduct(residual, residual));
        result.converged = result.residual_norm <= threshold;
        result.outcome = CgOutcome::kDenseFallback;
        result.damping_used = options.damping;
        MSOPDS_LOG(Warning)
            << "CG fell back to the dense solver (n = " << b.size()
            << ", residual " << result.residual_norm << ")";
        return result;
      }
    }
  }

  result.outcome = CgOutcome::kBreakdown;
  result.converged = false;
  MSOPDS_LOG(Warning) << "CG breakdown not recovered after "
                      << result.breakdowns
                      << " attempt(s); returning best finite iterate";
  return result;
}

}  // namespace msopds
