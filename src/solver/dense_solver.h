#ifndef MSOPDS_SOLVER_DENSE_SOLVER_H_
#define MSOPDS_SOLVER_DENSE_SOLVER_H_

#include <functional>

#include "tensor/tensor.h"
#include "util/status.h"

namespace msopds {

/// Solves A x = b by Gaussian elimination with partial pivoting. A must be
/// square rank-2, b rank-1. Reference implementation used to validate the
/// matrix-free conjugate gradient in tests; returns FailedPrecondition if
/// A is (numerically) singular.
StatusOr<Tensor> SolveDense(const Tensor& a, const Tensor& b);

/// Dense symmetric matrix from a linear operator (for testing small
/// Hessians): column j is apply(e_j).
Tensor Materialize(const std::function<Tensor(const Tensor&)>& apply,
                   int64_t size);

}  // namespace msopds

#endif  // MSOPDS_SOLVER_DENSE_SOLVER_H_
