#include "core/experiment.h"

#include "attack/baselines.h"
#include "attack/pga_attack.h"
#include "attack/poisonrec_attack.h"
#include "attack/revadv_attack.h"
#include "attack/sattack.h"
#include "attack/trial_attack.h"
#include "core/bopds.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace msopds {
namespace {

std::vector<OpponentSpec> AnticipatedOpponents(const GameContext& context) {
  std::vector<OpponentSpec> specs;
  for (size_t q = 1; q < context.demos.size(); ++q) {
    OpponentSpec spec;
    spec.demo = context.demos[q];
    spec.budget_level = context.config.opponent_budget_level;
    spec.preset_rating = kMinRating;
    specs.push_back(std::move(spec));
  }
  return specs;
}

AttackFactory MsopdsFactory(bool ratings, bool social, bool item, bool fakes,
                            std::string variant) {
  return [=](const GameContext& context) -> std::unique_ptr<Attack> {
    MsopdsConfig config = DefaultMsopdsConfig();
    config.include_rating_actions = ratings;
    config.include_social_actions = social;
    config.include_item_actions = item;
    config.inject_fake_accounts = fakes;
    config.variant_name = variant;
    return std::make_unique<Msopds>(config, AnticipatedOpponents(context));
  };
}

}  // namespace

std::vector<std::string> StandardMethods() {
  return {"None",   "Random", "Popular", "PGA",
          "S-attack", "RevAdv", "Trial",   "MSOPDS"};
}

std::vector<std::string> Fig8Methods() {
  return {"MSOPDS-ratings", "MSOPDS-ratings+item", "MSOPDS-ratings+user",
          "MSOPDS"};
}

std::vector<std::string> Fig9Methods() {
  return {"MSOPDS-real", "MSOPDS-fake", "MSOPDS-ratings+user"};
}

MsopdsConfig DefaultMsopdsConfig() {
  MsopdsConfig config;
  config.pds.embedding_dim = 8;
  config.pds.inner_steps = 5;
  config.pds.inner_learning_rate = 0.5;
  config.mso.leader_step = 0.005;
  config.mso.follower_step = 0.05;
  config.mso.outer_iterations = 20;
  return config;
}

AttackFactory MakeAttackFactory(const std::string& method) {
  if (method == "None") {
    return [](const GameContext&) { return std::make_unique<NoneAttack>(); };
  }
  if (method == "Random") {
    return [](const GameContext&) { return std::make_unique<RandomAttack>(); };
  }
  if (method == "Popular") {
    return
        [](const GameContext&) { return std::make_unique<PopularAttack>(); };
  }
  if (method == "PGA") {
    return [](const GameContext&) { return std::make_unique<PgaAttack>(); };
  }
  if (method == "S-attack") {
    return [](const GameContext&) { return std::make_unique<SAttack>(); };
  }
  if (method == "RevAdv") {
    return [](const GameContext&) { return std::make_unique<RevAdvAttack>(); };
  }
  if (method == "Trial") {
    return [](const GameContext&) { return std::make_unique<TrialAttack>(); };
  }
  if (method == "PoisonRec") {
    return [](const GameContext&) {
      return std::make_unique<PoisonRecAttack>();
    };
  }
  if (method == "BOPDS") {
    return [](const GameContext&) -> std::unique_ptr<Attack> {
      BopdsConfig config;
      config.comprehensive = true;
      config.demote = false;
      config.variant_name = "BOPDS";
      return std::make_unique<Bopds>(config);
    };
  }
  if (method == "MSOPDS") {
    return MsopdsFactory(true, true, true, true, "MSOPDS");
  }
  if (method == "MSOPDS-ratings") {
    return MsopdsFactory(true, false, false, true, "MSOPDS-ratings");
  }
  if (method == "MSOPDS-ratings+item") {
    return MsopdsFactory(true, false, true, true, "MSOPDS-ratings+item");
  }
  if (method == "MSOPDS-ratings+user") {
    return MsopdsFactory(true, true, false, true, "MSOPDS-ratings+user");
  }
  if (method == "MSOPDS-real") {
    return MsopdsFactory(true, true, false, false, "MSOPDS-real");
  }
  if (method == "MSOPDS-fake") {
    return MsopdsFactory(false, true, false, true, "MSOPDS-fake");
  }
  MSOPDS_LOG(Fatal) << "unknown attack method: " << method;
  return {};
}

Dataset MakeExperimentDataset(const std::string& name, double scale,
                              uint64_t seed) {
  SyntheticConfig config;
  if (name == "ciao") {
    config = CiaoProfile(scale);
  } else if (name == "epinions") {
    config = EpinionsProfile(scale);
  } else if (name == "librarything") {
    config = LibraryThingProfile(scale);
  } else {
    MSOPDS_LOG(Fatal) << "unknown dataset profile: " << name;
  }
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

GameConfig DefaultGameConfig() {
  GameConfig config;
  config.victim.embedding_dim = 16;
  config.victim_training.epochs = 40;
  config.victim_training.learning_rate = 0.05;
  config.victim_training.optimizer = OptimizerKind::kAdam;
  config.num_opponents = 1;
  config.opponent_budget_level = 2;
  config.opponent_pds.embedding_dim = 8;
  config.opponent_pds.inner_steps = 4;
  config.opponent_step = 0.05;
  config.opponent_iterations = 8;
  return config;
}

CellStats RunRepeatedCell(const MultiplayerGame& game,
                          const std::string& method, int budget_level,
                          uint64_t seed, int repeats) {
  return RunRepeatedCellChecked(game, method, budget_level, seed, repeats)
      .stats;
}

CellOutcome RunRepeatedCellChecked(const MultiplayerGame& game,
                                   const std::string& method,
                                   int budget_level, uint64_t seed,
                                   int repeats) {
  MSOPDS_CHECK_GT(repeats, 0);
  const AttackFactory factory = MakeAttackFactory(method);
  CellOutcome outcome;
  for (int r = 0; r < repeats; ++r) {
    const GameResult result =
        game.Run(factory, budget_level, seed + static_cast<uint64_t>(r));
    if (!result.healthy) {
      ++outcome.unhealthy_repeats;
      outcome.error = result.failure;
      MSOPDS_LOG(Warning) << method << " b=" << budget_level << " repeat " << r
                          << " unhealthy, excluded from mean: "
                          << result.failure;
      continue;
    }
    outcome.stats.mean_average_rating += result.average_rating;
    outcome.stats.mean_hit_rate += result.hit_rate_at_3;
    ++outcome.stats.repeats;
  }
  if (outcome.stats.repeats == 0) {
    outcome.ok = false;
    outcome.stats.mean_average_rating = 0.0;
    outcome.stats.mean_hit_rate = 0.0;
    if (outcome.error.empty()) outcome.error = "no healthy repeats";
    return outcome;
  }
  outcome.stats.mean_average_rating /= outcome.stats.repeats;
  outcome.stats.mean_hit_rate /= outcome.stats.repeats;
  return outcome;
}

std::string GameResultToJson(const GameResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("method").String(result.method);
  json.Key("average_rating").Double(result.average_rating);
  json.Key("hit_rate_at_3").Double(result.hit_rate_at_3);
  json.Key("victim_final_loss").Double(result.victim_final_loss);
  json.Key("opponent_ratings").Int(result.opponent_ratings);
  json.Key("healthy").Bool(result.healthy);
  json.Key("victim_retries").Int(result.victim_retries);
  if (!result.failure.empty()) json.Key("failure").String(result.failure);
  json.Key("attacker_plan").BeginObject();
  json.Key("ratings").Int(result.attacker_plan.CountType(ActionType::kRating));
  json.Key("social_edges")
      .Int(result.attacker_plan.CountType(ActionType::kSocialEdge));
  json.Key("item_edges")
      .Int(result.attacker_plan.CountType(ActionType::kItemEdge));
  json.EndObject();
  json.EndObject();
  return json.TakeString();
}

}  // namespace msopds
