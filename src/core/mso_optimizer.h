#ifndef MSOPDS_CORE_MSO_OPTIMIZER_H_
#define MSOPDS_CORE_MSO_OPTIMIZER_H_

#include <functional>
#include <vector>

#include "attack/importance_vector.h"
#include "solver/conjugate_gradient.h"

namespace msopds {

/// Hyperparameters of the Multilevel Stackelberg Optimization.
struct MsoConfig {
  /// Leader step size eta^p; must be < follower_step (Algorithm 1 assert,
  /// the push-pull convergence condition of Theorem 3 / Fiez et al.).
  double leader_step = 0.005;
  /// Follower step size eta^q.
  double follower_step = 0.05;
  /// Outer iterations K.
  int outer_iterations = 20;
  /// Conjugate gradient options for the implicit (Hessian) solve.
  CgOptions cg = {/*max_iterations=*/8, /*relative_tolerance=*/1e-4,
                  /*damping=*/1e-2};
};

/// Per-iteration diagnostics.
struct MsoIterationStats {
  double leader_loss = 0.0;
  std::vector<double> follower_losses;
  double leader_grad_norm = 0.0;
  double implicit_term_norm = 0.0;
  int cg_iterations = 0;

  // --- Resilience diagnostics (all zero on a healthy iteration) ---
  /// CG breakdown events and dense-solver fallbacks this iteration.
  int cg_breakdowns = 0;
  int cg_fallbacks = 0;
  /// Non-finite losses/gradients/implicit terms detected and contained.
  int non_finite_events = 0;
  /// Player updates skipped because the proposed step was non-finite
  /// (the player keeps its last healthy iterate for the next round).
  int skipped_updates = 0;

  bool healthy() const {
    return cg_breakdowns == 0 && non_finite_events == 0 &&
           skipped_updates == 0;
  }
};

/// Multilevel Stackelberg Optimization (paper §IV-B).
///
/// Simultaneously updates the leader's importance vector with the total
/// derivative of Eq. (13)/(14) — the direct term minus the implicit
/// reaction term obtained by a conjugate-gradient solve of
/// xi * d^2 L^q / dX^q^2 = dL^p / dX^q followed by a mixed vector-Jacobian
/// product — and each follower with the partial derivative of Eq. (9).
class MsoOptimizer {
 public:
  /// Evaluates every player's loss given their binarized importance
  /// Variables (players[0] = leader). Must build a fresh differentiable
  /// graph per call (e.g. PdsSurrogate::TrainUnrolled + attack losses).
  using LossFn = std::function<std::vector<Variable>(
      const std::vector<Variable>& xhats)>;

  explicit MsoOptimizer(const MsoConfig& config);

  /// Runs K simultaneous update iterations, mutating the players'
  /// importance vectors. `budgets[i]` is player i's binarization budget.
  /// Returns per-iteration diagnostics.
  std::vector<MsoIterationStats> Optimize(
      const LossFn& losses, const std::vector<ImportanceVector*>& players,
      const std::vector<Budget>& budgets) const;

  const MsoConfig& config() const { return config_; }

 private:
  MsoConfig config_;
};

}  // namespace msopds

#endif  // MSOPDS_CORE_MSO_OPTIMIZER_H_
