#include "core/bopds.h"

#include "attack/baselines.h"
#include "attack/importance_vector.h"
#include "core/losses.h"
#include "tensor/grad.h"
#include "util/arena.h"
#include "util/logging.h"

namespace msopds {

Bopds::Bopds(BopdsConfig config) : config_(std::move(config)) {
  MSOPDS_CHECK_GT(config_.step, 0.0);
  MSOPDS_CHECK_GT(config_.iterations, 0);
}

PoisonPlan Bopds::Execute(Dataset* world, const Demographics& demo,
                          const AttackBudget& budget, Rng* rng) {
  MSOPDS_CHECK(world != nullptr);
  MSOPDS_CHECK(rng != nullptr);
  losses_.clear();

  PoisonPlan plan;
  std::vector<int64_t> fakes;
  if (config_.comprehensive && config_.inject_fake_accounts &&
      budget.num_fake_users > 0) {
    auto injected = InjectFakeUsers(world, demo, budget);
    fakes = std::move(injected.first);
    plan = std::move(injected.second);
    plan.ApplyTo(world);
  }

  CapacitySet capacity =
      config_.comprehensive
          ? CapacitySet::MakeComprehensive(*world, demo, fakes,
                                           config_.preset_rating)
          : CapacitySet::MakeRatingOnly(*world, demo, config_.preset_rating);
  if (capacity.size() == 0) return plan;

  const Budget capacity_budget =
      capacity.ClampBudget(config_.comprehensive
                               ? budget.ToCapacityBudget()
                               : Budget{budget.hired_raters, 0, 0});

  Rng surrogate_rng = rng->Split();
  PdsSurrogate surrogate(*world, {&capacity}, config_.pds, &surrogate_rng);

  std::vector<int64_t> target_users, target_items;
  std::vector<int64_t> compete_users, compete_items;
  for (int64_t user : demo.target_audience) {
    target_users.push_back(user);
    target_items.push_back(demo.target_item);
    for (int64_t item : demo.compete_items) {
      compete_users.push_back(user);
      compete_items.push_back(item);
    }
  }
  const int64_t num_compete =
      static_cast<int64_t>(demo.compete_items.size());

  Rng init_rng = rng->Split();
  ImportanceVector importance(&capacity, &init_rng);
  // One arena region per planning run: tape buffers recycle across
  // iterations, free lists trim when planning finishes.
  ArenaRegion region;
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    Variable xhat = importance.BinarizedParam(capacity_budget);
    Tensor gradient;
    if (config_.pds.checkpoint_every > 0) {
      // Memory-bounded first-order path: segment the unrolled tape and
      // rematerialize during backward (see PdsSurrogate::CheckpointedGrad).
      PdsSurrogate::FirstOrderResult result = surrogate.CheckpointedGrad(
          {xhat}, [&](const PdsSurrogate::Outcome& outcome) {
            return ComprehensiveLossFromPredictions(
                surrogate.Predict(outcome, target_users, target_items),
                surrogate.Predict(outcome, compete_users, compete_items),
                num_compete, config_.demote);
          });
      losses_.push_back(result.loss);
      gradient = std::move(result.gradients[0]);
    } else {
      const PdsSurrogate::Outcome outcome = surrogate.TrainUnrolled({xhat});
      Variable target_preds =
          surrogate.Predict(outcome, target_users, target_items);
      Variable compete_preds =
          surrogate.Predict(outcome, compete_users, compete_items);
      Variable loss = ComprehensiveLossFromPredictions(
          target_preds, compete_preds, num_compete, config_.demote);
      losses_.push_back(loss.value().item());
      gradient = GradValues(loss, {xhat})[0];
    }
    importance.ApplyUpdate(gradient, config_.step);
  }

  PoisonPlan planned = importance.ExtractPlan(capacity_budget);
  planned.ApplyTo(world);
  plan.actions.insert(plan.actions.end(), planned.actions.begin(),
                      planned.actions.end());
  return plan;
}

}  // namespace msopds
