#include "core/mso_optimizer.h"

#include <cmath>

#include "tensor/grad.h"
#include "util/arena.h"
#include "util/health.h"
#include "util/logging.h"

namespace msopds {
namespace {

double Norm(const Tensor& t) {
  double total = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) total += t.data()[i] * t.data()[i];
  return std::sqrt(total);
}

}  // namespace

MsoOptimizer::MsoOptimizer(const MsoConfig& config) : config_(config) {
  MSOPDS_CHECK_GT(config.leader_step, 0.0);
  // Algorithm 1's assert: 0 < eta^p < eta^q (push-pull condition).
  MSOPDS_CHECK_LT(config.leader_step, config.follower_step)
      << "MSO requires the leader step size below the follower step size";
  MSOPDS_CHECK_GT(config.outer_iterations, 0);
}

std::vector<MsoIterationStats> MsoOptimizer::Optimize(
    const LossFn& losses, const std::vector<ImportanceVector*>& players,
    const std::vector<Budget>& budgets) const {
  MSOPDS_CHECK_GE(players.size(), 1u);
  MSOPDS_CHECK_EQ(players.size(), budgets.size());
  const size_t num_players = players.size();

  std::vector<MsoIterationStats> history;
  history.reserve(static_cast<size_t>(config_.outer_iterations));

  // One arena region per MSO run: surrogate tapes and CG temporaries
  // recycle across iterations, trimmed in bulk at the end.
  ArenaRegion region;
  for (int iteration = 0; iteration < config_.outer_iterations; ++iteration) {
    // Step 4: binarize all importance vectors.
    std::vector<Variable> xhats;
    xhats.reserve(num_players);
    for (size_t p = 0; p < num_players; ++p) {
      xhats.push_back(players[p]->BinarizedParam(budgets[p]));
    }

    // Steps 5-7: evaluate all players' losses through the surrogate.
    const std::vector<Variable> loss_values = losses(xhats);
    MSOPDS_CHECK_EQ(loss_values.size(), num_players);

    MsoIterationStats stats;
    stats.leader_loss = loss_values[0].value().item();
    for (size_t q = 1; q < num_players; ++q) {
      stats.follower_losses.push_back(loss_values[q].value().item());
    }

    // Step 8: first-order partials. The leader needs dL^p/dXhat^p and
    // dL^p/dXhat^{q_i}; each follower needs dL^{q_i}/dXhat^{q_i} with the
    // graph retained for second-order products.
    const std::vector<Variable> leader_grads = Grad(loss_values[0], xhats);
    Tensor leader_total = leader_grads[0].value().Clone();

    std::vector<Tensor> follower_updates(num_players);  // [q] for q >= 1
    for (size_t q = 1; q < num_players; ++q) {
      Variable follower_grad = Grad(loss_values[q], {xhats[q]})[0];
      follower_updates[q] = follower_grad.value().Clone();

      // Step 9: solve xi * d^2L^q/dXhat^q^2 = dL^p/dXhat^q by CG over
      // exact Hessian-vector products (double backward). A non-finite
      // right-hand side or follower gradient (e.g. an injected NaN in
      // the surrogate inner loop) skips the implicit term for this
      // iteration instead of poisoning the leader update.
      const Tensor& rhs = leader_grads[q].value();
      if (!AllFinite(rhs) || !AllFinite(follower_updates[q])) {
        ++stats.non_finite_events;
        continue;
      }
      if (rhs.MaxAbs() > 0.0 && follower_grad.requires_grad()) {
        LinearOperator hvp = [&](const Tensor& v) {
          return HessianVectorProduct(follower_grad, xhats[q], v);
        };
        const CgResult solve = ConjugateGradient(hvp, rhs, config_.cg);
        stats.cg_iterations += solve.iterations;
        stats.cg_breakdowns += solve.breakdowns;
        if (solve.outcome == CgOutcome::kDenseFallback) ++stats.cg_fallbacks;
        if (solve.outcome == CgOutcome::kBreakdown) {
          // Unrecovered solve: fall back to the first-order leader step.
          continue;
        }

        // Step 10's implicit term: xi * d^2 L^q / (dXhat^p dXhat^q).
        const Tensor implicit =
            MixedVectorJacobian(follower_grad, xhats[0], solve.solution);
        if (!AllFinite(implicit)) {
          ++stats.non_finite_events;
          continue;
        }
        stats.implicit_term_norm += Norm(implicit);
        for (int64_t i = 0; i < leader_total.size(); ++i) {
          leader_total.data()[i] -= implicit.data()[i];
        }
      }
    }

    stats.leader_grad_norm = Norm(leader_total);

    // Step 10: leader update with the total derivative. Step 11:
    // follower updates with their partial derivatives. A non-finite
    // step is dropped (the player keeps its last healthy iterate) so
    // one poisoned evaluation cannot destroy the whole optimization.
    if (AllFinite(leader_total)) {
      players[0]->ApplyUpdate(leader_total, config_.leader_step);
    } else {
      ++stats.skipped_updates;
      MSOPDS_LOG(Warning) << "MSO iteration " << iteration
                          << ": leader update non-finite, skipped";
    }
    for (size_t q = 1; q < num_players; ++q) {
      if (AllFinite(follower_updates[q])) {
        players[q]->ApplyUpdate(follower_updates[q], config_.follower_step);
      } else {
        ++stats.skipped_updates;
        MSOPDS_LOG(Warning) << "MSO iteration " << iteration << ": follower "
                            << q << " update non-finite, skipped";
      }
    }
    history.push_back(std::move(stats));
  }
  return history;
}

}  // namespace msopds
