#ifndef MSOPDS_CORE_LOSSES_H_
#define MSOPDS_CORE_LOSSES_H_

#include "tensor/ops.h"

namespace msopds {

/// Injection Attack loss (paper Eq. (3)): the negated mean predicted
/// rating of the target item; `target_predictions` is the [A] vector of
/// predictions R(u, i_t) over the relevant users.
Variable InjectionLossFromPredictions(const Variable& target_predictions);

/// Comprehensive Attack loss (paper Eq. (5)):
///   (1/|U_TA|) sum_u sum_c SELU(R(u, i_c) - R(u, i_t))       (promote)
/// or with the difference reversed when `demote` is true (the opponents'
/// objective: push the target below its competitors).
///
/// `target_predictions` is [A] (one entry per audience user);
/// `compete_predictions` is [A*C] in user-major order (all competitor
/// predictions of audience user 0 first, then user 1, ...).
Variable ComprehensiveLossFromPredictions(const Variable& target_predictions,
                                          const Variable& compete_predictions,
                                          int64_t num_compete, bool demote);

}  // namespace msopds

#endif  // MSOPDS_CORE_LOSSES_H_
