#ifndef MSOPDS_CORE_MSOPDS_H_
#define MSOPDS_CORE_MSOPDS_H_

#include <string>
#include <vector>

#include "attack/attack.h"
#include "core/mso_optimizer.h"
#include "core/pds_surrogate.h"

namespace msopds {

/// What the attacker anticipates about one subsequent opponent: his
/// demographics (shared market, own customer base), his budget level
/// b_op, and the rating he will spam (1-star demotes the target).
struct OpponentSpec {
  Demographics demo;
  int budget_level = 2;
  double preset_rating = kMinRating;
};

/// Configuration of the full MSOPDS attack.
struct MsopdsConfig {
  PdsConfig pds;
  MsoConfig mso;
  /// Action-category switches for the paper's Fig. 8/9 ablations.
  bool include_rating_actions = true;
  bool include_social_actions = true;
  bool include_item_actions = true;
  /// When false the attacker hires real users only (MSOPDS-real).
  bool inject_fake_accounts = true;
  /// Reported method name (ablations rename themselves).
  std::string variant_name = "MSOPDS";
};

/// Multilevel Stackelberg Optimization over Progressive Differentiable
/// Surrogate — the paper's contribution (Algorithm 1), packaged as an
/// Attack for the multiplayer evaluation protocol. Plans a Multiplayer
/// Comprehensive Attack that anticipates the given opponents' subsequent
/// Comprehensive Attacks and injects the resulting plan into the world.
class Msopds : public Attack {
 public:
  Msopds(MsopdsConfig config, std::vector<OpponentSpec> opponents);

  std::string name() const override { return config_.variant_name; }

  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;

  /// Diagnostics of the last Execute (per MSO iteration).
  const std::vector<MsoIterationStats>& last_history() const {
    return history_;
  }

 private:
  MsopdsConfig config_;
  std::vector<OpponentSpec> opponents_;
  std::vector<MsoIterationStats> history_;
};

}  // namespace msopds

#endif  // MSOPDS_CORE_MSOPDS_H_
