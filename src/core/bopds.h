#ifndef MSOPDS_CORE_BOPDS_H_
#define MSOPDS_CORE_BOPDS_H_

#include <string>
#include <vector>

#include "attack/attack.h"
#include "core/pds_surrogate.h"

namespace msopds {

/// Configuration of the bi-level ablation attack.
struct BopdsConfig {
  PdsConfig pds;
  /// First-order step size on the importance vector.
  double step = 0.05;
  /// Gradient iterations.
  int iterations = 12;
  /// true: full Comprehensive capacity C_CA (fake links, item links);
  /// false: rating-only capacity (the simplified opponents of §VI-A4).
  bool comprehensive = true;
  /// true: demote the target below competitors (opponent objective);
  /// false: promote it (attacker objective).
  bool demote = false;
  /// Rating value given by hired raters (5 promotes, 1 demotes).
  double preset_rating = kMaxRating;
  /// Whether to inject fake accounts (only meaningful for comprehensive).
  bool inject_fake_accounts = true;
  std::string variant_name = "BOPDS";
};

/// Bi-level Optimization over Progressive Differentiable Surrogate —
/// the paper's single-player ablation (end of §IV-D): Algorithm 1 with
/// the opponent machinery removed, i.e. plain gradient descent of the
/// Comprehensive Attack loss w.r.t. the player's own importance vector.
/// Also serves as the planning method of the *actual* opponents in every
/// experiment (§VI-B: "each opponent selects real users from his customer
/// base by BOPDS").
class Bopds : public Attack {
 public:
  explicit Bopds(BopdsConfig config);

  std::string name() const override { return config_.variant_name; }

  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;

  /// Loss trajectory of the last Execute.
  const std::vector<double>& last_losses() const { return losses_; }

 private:
  BopdsConfig config_;
  std::vector<double> losses_;
};

}  // namespace msopds

#endif  // MSOPDS_CORE_BOPDS_H_
