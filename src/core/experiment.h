#ifndef MSOPDS_CORE_EXPERIMENT_H_
#define MSOPDS_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/multiplayer_game.h"
#include "core/msopds.h"
#include "data/synthetic.h"

namespace msopds {

/// The Table III method rows in paper order (IA baselines then MSOPDS).
std::vector<std::string> StandardMethods();

/// MSOPDS ablation variants of Fig. 8 (action categories; Epinions) and
/// Fig. 9 (real vs fake accounts; Epinions).
std::vector<std::string> Fig8Methods();
std::vector<std::string> Fig9Methods();

/// Maps a method name to an attack factory. Recognized names:
/// None, Random, Popular, PGA, S-attack, RevAdv, Trial, PoisonRec (RL
/// extension baseline), BOPDS, MSOPDS, MSOPDS-ratings,
/// MSOPDS-ratings+item, MSOPDS-ratings+user, MSOPDS-real, MSOPDS-fake.
/// CHECK-fails on unknown names.
AttackFactory MakeAttackFactory(const std::string& method);

/// Generates the named synthetic dataset profile ("ciao", "epinions",
/// "librarything") at `scale`, deterministically from `seed`.
Dataset MakeExperimentDataset(const std::string& name, double scale,
                              uint64_t seed);

/// Game configuration tuned so the full benchmark suite runs on one CPU
/// core (paper hyperparameters where feasible: eta^p = 0.005 < eta^q =
/// 0.05, L = 5, K = 20 are kept in Msopds defaults; victim/opponent sizes
/// are reduced).
GameConfig DefaultGameConfig();

/// Default MSOPDS configuration used by MakeAttackFactory("MSOPDS").
MsopdsConfig DefaultMsopdsConfig();

/// Mean metrics over `repeats` games with seeds seed, seed+1, ...
struct CellStats {
  double mean_average_rating = 0.0;
  double mean_hit_rate = 0.0;
  int repeats = 0;
};

CellStats RunRepeatedCell(const MultiplayerGame& game,
                          const std::string& method, int budget_level,
                          uint64_t seed, int repeats);

/// Health-aware cell outcome: `stats` averages only healthy repeats
/// (those whose victim training recovered to a finite model and whose
/// metrics are finite). When every repeat failed, `ok` is false, the
/// stats are zero and `error` records the last failure — the cell
/// degrades to a recorded-failure row instead of a silent NaN.
struct CellOutcome {
  CellStats stats;
  bool ok = true;
  /// Repeats excluded from the mean because they ended unhealthy.
  int unhealthy_repeats = 0;
  std::string error;
};

/// Like RunRepeatedCell but never lets a numerically-failed game poison
/// the mean; fault-free behaviour is arithmetically identical.
CellOutcome RunRepeatedCellChecked(const MultiplayerGame& game,
                                   const std::string& method,
                                   int budget_level, uint64_t seed,
                                   int repeats);

/// Machine-readable export of one game outcome (method, metrics, plan
/// composition) for downstream tooling.
std::string GameResultToJson(const GameResult& result);

}  // namespace msopds

#endif  // MSOPDS_CORE_EXPERIMENT_H_
