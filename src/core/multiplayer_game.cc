#include "core/multiplayer_game.h"

#include <cmath>

#include "core/bopds.h"
#include "recsys/metrics.h"
#include "util/logging.h"

namespace msopds {

MultiplayerGame::MultiplayerGame(const Dataset& base, GameConfig config)
    : base_(base), config_(std::move(config)) {
  const Status status = base_.Validate();
  MSOPDS_CHECK(status.ok()) << status.ToString();
  MSOPDS_CHECK_GE(config_.num_opponents, 0);
}

GameResult MultiplayerGame::Run(const AttackFactory& attacker_factory,
                                int budget_level, uint64_t seed) const {
  Rng rng(seed);

  GameContext context;
  context.base = &base_;
  context.demos =
      SampleDemographics(base_, 1 + config_.num_opponents, &rng);
  context.config = config_;
  context.attacker_budget = AttackBudget::FromLevel(budget_level, base_);

  std::unique_ptr<Attack> attacker = attacker_factory(context);
  MSOPDS_CHECK(attacker != nullptr);

  GameResult result;
  result.method = attacker->name();

  // 1) The attacker poisons first, seeing only the clean data.
  Dataset world = base_;
  Rng attacker_rng = rng.Split();
  result.attacker_plan = attacker->Execute(
      &world, context.demos[0], context.attacker_budget, &attacker_rng);

  // 2) Each opponent reacts in sequence, seeing all prior poison.
  //    They demote the attacker's target with 1-star hired ratings
  //    planned by BOPDS (§VI-A4 / §VI-C).
  for (int q = 0; q < config_.num_opponents; ++q) {
    BopdsConfig opponent_config;
    opponent_config.pds = config_.opponent_pds;
    opponent_config.step = config_.opponent_step;
    opponent_config.iterations = config_.opponent_iterations;
    opponent_config.comprehensive = false;
    opponent_config.demote = true;
    opponent_config.preset_rating = kMinRating;
    opponent_config.variant_name = "BOPDS-opponent";
    Bopds opponent(opponent_config);

    AttackBudget opponent_budget =
        AttackBudget::FromLevel(config_.opponent_budget_level, world);
    opponent_budget.promote_rating = kMinRating;

    Rng opponent_rng = rng.Split();
    const PoisonPlan plan =
        opponent.Execute(&world, context.demos[static_cast<size_t>(q + 1)],
                         opponent_budget, &opponent_rng);
    result.opponent_ratings += plan.CountType(ActionType::kRating);
  }

  // 3) Train the victim Het-RecSys on the fully-poisoned records.
  Rng victim_rng = rng.Split();
  HetRecSys victim(world, config_.victim, &victim_rng);
  const TrainResult training =
      TrainModel(&victim, world.ratings, config_.victim_training);
  result.victim_final_loss = training.final_loss;
  result.victim_retries = training.retries;
  if (!training.healthy) {
    result.healthy = false;
    result.failure = "victim training: " + training.failure;
  }

  // 4) The attacker's metrics on his market.
  const Demographics& market = context.demos[0];
  result.average_rating =
      AverageTargetRating(&victim, market.target_audience, market.target_item);
  result.hit_rate_at_3 = HitRateAtK(&victim, market.target_audience,
                                    market.target_item, market.compete_items,
                                    /*k=*/3);
  if (result.healthy && (!std::isfinite(result.average_rating) ||
                         !std::isfinite(result.hit_rate_at_3))) {
    result.healthy = false;
    result.failure = "non-finite attacker metrics";
  }
  return result;
}

}  // namespace msopds
