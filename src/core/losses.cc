#include "core/losses.h"

#include "util/logging.h"

namespace msopds {

Variable InjectionLossFromPredictions(const Variable& target_predictions) {
  MSOPDS_CHECK_EQ(target_predictions.value().rank(), 1);
  return Neg(Mean(target_predictions));
}

Variable ComprehensiveLossFromPredictions(const Variable& target_predictions,
                                          const Variable& compete_predictions,
                                          int64_t num_compete, bool demote) {
  MSOPDS_CHECK_EQ(target_predictions.value().rank(), 1);
  MSOPDS_CHECK_EQ(compete_predictions.value().rank(), 1);
  MSOPDS_CHECK_GT(num_compete, 0);
  const int64_t audience = target_predictions.value().dim(0);
  MSOPDS_CHECK_EQ(compete_predictions.value().dim(0), audience * num_compete);
  MSOPDS_CHECK_GT(audience, 0);

  // Repeat each target prediction num_compete times (user-major).
  std::vector<int64_t> repeat(static_cast<size_t>(audience * num_compete));
  for (int64_t a = 0; a < audience; ++a) {
    for (int64_t c = 0; c < num_compete; ++c) {
      repeat[static_cast<size_t>(a * num_compete + c)] = a;
    }
  }
  Variable target_repeated =
      Gather1(target_predictions, MakeIndex(std::move(repeat)));
  Variable difference = demote ? Sub(target_repeated, compete_predictions)
                               : Sub(compete_predictions, target_repeated);
  return ScalarMul(Sum(Selu(difference)),
                   1.0 / static_cast<double>(audience));
}

}  // namespace msopds
