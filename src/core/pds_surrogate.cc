#include "core/pds_surrogate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/grad.h"
#include "tensor/remat.h"
#include "util/fault.h"
#include "util/health.h"
#include "util/logging.h"

namespace msopds {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, double stddev, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = rng->Normal(0.0, stddev);
  return t;
}

Tensor GlorotTensor(int64_t rows, int64_t cols, Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  Tensor t({rows, cols});
  for (int64_t i = 0; i < t.size(); ++i)
    t.data()[i] = rng->Uniform(-limit, limit);
  return t;
}

}  // namespace

PdsSurrogate::PdsSurrogate(const Dataset& world,
                           std::vector<const CapacitySet*> capacities,
                           const PdsConfig& config, Rng* rng)
    : config_(config),
      capacities_(std::move(capacities)),
      num_users_(world.num_users),
      num_items_(world.num_items) {
  MSOPDS_CHECK(rng != nullptr);
  MSOPDS_CHECK(!capacities_.empty());
  MSOPDS_CHECK_GT(config.inner_steps, 0);

  const int64_t players = num_players();

  // Upper bound on candidate edges of either type; each contributes two
  // directed edges. Used to size the edge arrays once up front.
  size_t candidate_upper = 0;
  for (const CapacitySet* capacity : capacities_) {
    candidate_upper += capacity->actions().size();
  }

  // --- Social graph bundle: base edges then candidates per player. ---
  {
    std::vector<int64_t> dst, src;
    world.social.AppendDirectedEdges(&dst, &src);
    dst.reserve(dst.size() + 2 * candidate_upper);
    src.reserve(src.size() + 2 * candidate_upper);
    social_.num_base_edges = static_cast<int64_t>(dst.size());
    social_.num_nodes = num_users_;
    social_.player_gather.resize(static_cast<size_t>(players));
    for (int64_t p = 0; p < players; ++p) {
      const auto& actions = capacities_[static_cast<size_t>(p)]->actions();
      social_.player_gather[static_cast<size_t>(p)].reserve(
          2 * actions.size());
      for (size_t k = 0; k < actions.size(); ++k) {
        if (actions[k].type != ActionType::kSocialEdge) continue;
        MSOPDS_CHECK_LT(actions[k].a, num_users_);
        MSOPDS_CHECK_LT(actions[k].b, num_users_);
        // Both directions, each regulated by the same x-hat element.
        dst.push_back(actions[k].a);
        src.push_back(actions[k].b);
        dst.push_back(actions[k].b);
        src.push_back(actions[k].a);
        social_.player_gather[static_cast<size_t>(p)].push_back(
            static_cast<int64_t>(k));
        social_.player_gather[static_cast<size_t>(p)].push_back(
            static_cast<int64_t>(k));
      }
    }
    std::vector<int64_t> degree(static_cast<size_t>(num_users_), 0);
    for (int64_t d : dst) ++degree[static_cast<size_t>(d)];
    social_.coefficients = Tensor({static_cast<int64_t>(dst.size())});
    for (size_t e = 0; e < dst.size(); ++e) {
      social_.coefficients.at(static_cast<int64_t>(e)) =
          1.0 / static_cast<double>(degree[static_cast<size_t>(dst[e])]);
    }
    social_.dst = MakeIndex(std::move(dst));
    social_.src = MakeIndex(std::move(src));
  }

  // --- Item graph bundle. ---
  {
    std::vector<int64_t> dst, src;
    world.items.AppendDirectedEdges(&dst, &src);
    dst.reserve(dst.size() + 2 * candidate_upper);
    src.reserve(src.size() + 2 * candidate_upper);
    item_.num_base_edges = static_cast<int64_t>(dst.size());
    item_.num_nodes = num_items_;
    item_.player_gather.resize(static_cast<size_t>(players));
    for (int64_t p = 0; p < players; ++p) {
      const auto& actions = capacities_[static_cast<size_t>(p)]->actions();
      item_.player_gather[static_cast<size_t>(p)].reserve(
          2 * actions.size());
      for (size_t k = 0; k < actions.size(); ++k) {
        if (actions[k].type != ActionType::kItemEdge) continue;
        MSOPDS_CHECK_LT(actions[k].a, num_items_);
        MSOPDS_CHECK_LT(actions[k].b, num_items_);
        dst.push_back(actions[k].a);
        src.push_back(actions[k].b);
        dst.push_back(actions[k].b);
        src.push_back(actions[k].a);
        item_.player_gather[static_cast<size_t>(p)].push_back(
            static_cast<int64_t>(k));
        item_.player_gather[static_cast<size_t>(p)].push_back(
            static_cast<int64_t>(k));
      }
    }
    std::vector<int64_t> degree(static_cast<size_t>(num_items_), 0);
    for (int64_t d : dst) ++degree[static_cast<size_t>(d)];
    item_.coefficients = Tensor({static_cast<int64_t>(dst.size())});
    for (size_t e = 0; e < dst.size(); ++e) {
      item_.coefficients.at(static_cast<int64_t>(e)) =
          1.0 / static_cast<double>(degree[static_cast<size_t>(dst[e])]);
    }
    item_.dst = MakeIndex(std::move(dst));
    item_.src = MakeIndex(std::move(src));
  }

  // --- Base ratings. ---
  {
    std::vector<int64_t> users, items;
    base_targets_ = Tensor({static_cast<int64_t>(world.ratings.size())});
    users.reserve(world.ratings.size());
    items.reserve(world.ratings.size());
    for (size_t k = 0; k < world.ratings.size(); ++k) {
      users.push_back(world.ratings[k].user);
      items.push_back(world.ratings[k].item);
      base_targets_.at(static_cast<int64_t>(k)) = world.ratings[k].value;
    }
    base_users_ = MakeIndex(std::move(users));
    base_items_ = MakeIndex(std::move(items));
  }

  // --- Candidate poison ratings per player. ---
  poison_users_.resize(static_cast<size_t>(players));
  poison_items_.resize(static_cast<size_t>(players));
  poison_targets_.resize(static_cast<size_t>(players));
  poison_gather_.resize(static_cast<size_t>(players));
  for (int64_t p = 0; p < players; ++p) {
    std::vector<int64_t> users, items;
    std::vector<double> targets;
    const auto& actions = capacities_[static_cast<size_t>(p)]->actions();
    users.reserve(actions.size());
    items.reserve(actions.size());
    targets.reserve(actions.size());
    poison_gather_[static_cast<size_t>(p)].reserve(actions.size());
    for (size_t k = 0; k < actions.size(); ++k) {
      if (actions[k].type != ActionType::kRating) continue;
      MSOPDS_CHECK_LT(actions[k].a, num_users_);
      MSOPDS_CHECK_LT(actions[k].b, num_items_);
      users.push_back(actions[k].a);
      items.push_back(actions[k].b);
      targets.push_back(actions[k].rating);
      poison_gather_[static_cast<size_t>(p)].push_back(
          static_cast<int64_t>(k));
    }
    poison_users_[static_cast<size_t>(p)] = MakeIndex(std::move(users));
    poison_items_[static_cast<size_t>(p)] = MakeIndex(std::move(items));
    poison_targets_[static_cast<size_t>(p)] =
        Tensor::FromVector(std::move(targets));
  }

  // --- Fixed theta_0: embeddings then per-layer projections. ---
  MSOPDS_CHECK_GE(config.num_layers, 1);
  theta_init_.push_back(
      RandomTensor({num_users_, config.embedding_dim}, config.init_stddev,
                   rng));
  theta_init_.push_back(
      RandomTensor({num_items_, config.embedding_dim}, config.init_stddev,
                   rng));
  for (int layer = 0; layer < config.num_layers; ++layer) {
    theta_init_.push_back(
        GlorotTensor(2 * config.embedding_dim, config.embedding_dim, rng));
    theta_init_.push_back(
        GlorotTensor(2 * config.embedding_dim, config.embedding_dim, rng));
  }
}

Variable PdsSurrogate::EdgeWeights(const GraphBundle& bundle,
                                   const std::vector<Variable>& xhats) const {
  MSOPDS_CHECK_EQ(static_cast<int64_t>(xhats.size()), num_players());
  Variable weights = Constant(Tensor::Ones({bundle.num_base_edges}));
  for (size_t p = 0; p < xhats.size(); ++p) {
    const std::vector<int64_t>& gather = bundle.player_gather[p];
    if (gather.empty()) continue;
    weights = Concat1(weights, Gather1(xhats[p], MakeIndex(gather)));
  }
  return Mul(weights, Constant(bundle.coefficients.Clone()));
}

PdsSurrogate::Outcome PdsSurrogate::Forward(
    const std::vector<Variable>& theta, const Variable& social_weights,
    const Variable& item_weights) const {
  Variable users = theta[0];
  Variable items = theta[1];
  for (int layer = 0; layer < config_.num_layers; ++layer) {
    const Variable& w_user = theta[static_cast<size_t>(2 + 2 * layer)];
    const Variable& w_item = theta[static_cast<size_t>(3 + 2 * layer)];
    Variable user_agg =
        social_weights.value().size() > 0
            ? SpMM(social_.dst, social_.src, social_weights, users,
                   num_users_)
            : Constant(Tensor::Zeros({num_users_, config_.embedding_dim}));
    Variable item_agg =
        item_weights.value().size() > 0
            ? SpMM(item_.dst, item_.src, item_weights, items, num_items_)
            : Constant(Tensor::Zeros({num_items_, config_.embedding_dim}));
    users = MatMul(ConcatCols(users, user_agg), w_user);
    items = MatMul(ConcatCols(items, item_agg), w_item);
  }
  Outcome outcome;
  outcome.user_final = users;
  outcome.item_final = items;
  return outcome;
}

Variable PdsSurrogate::TrainLoss(const std::vector<Variable>& theta,
                                 const Variable& social_weights,
                                 const Variable& item_weights,
                                 const std::vector<Variable>& xhats) const {
  const Outcome outcome = Forward(theta, social_weights, item_weights);

  // Base term: mean squared error over the public ratings.
  Variable base_preds =
      AddScalar(PairDot(GatherRows(outcome.user_final, base_users_),
                        GatherRows(outcome.item_final, base_items_)),
                config_.prediction_offset);
  Variable loss = Mean(Square(Sub(base_preds, Constant(base_targets_.Clone()))));

  // Poison terms of Eq. (16), x-hat modulated, scaled to the base mean.
  const double scale =
      1.0 / static_cast<double>(std::max<int64_t>(1, base_targets_.size()));
  for (size_t p = 0; p < xhats.size(); ++p) {
    if (poison_gather_[p].empty()) continue;
    Variable preds =
        AddScalar(PairDot(GatherRows(outcome.user_final, poison_users_[p]),
                          GatherRows(outcome.item_final, poison_items_[p])),
                  config_.prediction_offset);
    Variable squared =
        Square(Sub(preds, Constant(poison_targets_[p].Clone())));
    Variable gathered = Gather1(xhats[p], MakeIndex(poison_gather_[p]));
    loss = Add(loss, ScalarMul(Sum(Mul(gathered, squared)), scale));
  }

  if (config_.l2 > 0.0) {
    Variable reg = SquaredNorm(theta[0]);
    for (size_t i = 1; i < theta.size(); ++i)
      reg = Add(reg, SquaredNorm(theta[i]));
    loss = Add(loss, ScalarMul(reg, config_.l2));
  }
  return loss;
}

PdsSurrogate::Outcome PdsSurrogate::TrainUnrolled(
    const std::vector<Variable>& xhats) const {
  MSOPDS_CHECK_EQ(static_cast<int64_t>(xhats.size()), num_players());
  const Variable social_weights = EdgeWeights(social_, xhats);
  const Variable item_weights = EdgeWeights(item_, xhats);

  // theta_0 leaves (fixed initialization, fresh nodes per call).
  std::vector<Variable> theta;
  theta.reserve(theta_init_.size());
  for (const Tensor& init : theta_init_) theta.push_back(Param(init.Clone()));

  // Recorded inner loop (Algorithm 1 steps 5-6).
  for (int step = 0; step < config_.inner_steps; ++step) {
    Variable loss = TrainLoss(theta, social_weights, item_weights, xhats);
    if (FaultInjector::Global().ShouldCorruptSurrogateStep()) {
      // Inject the NaN through the recorded graph so the corruption
      // propagates into gradients exactly like a real numerical failure
      // of the inner loop (resilience drills; no-op when disabled).
      loss = AddScalar(loss, std::numeric_limits<double>::quiet_NaN());
    }
    // Numerical-health probe: a non-finite inner loss poisons every
    // derivative taken through this graph, so record it for the outer
    // loop's diagnostics (the MSO guards then drop the resulting step).
    if (!std::isfinite(loss.value().item())) {
      if (non_finite_inner_events_ == 0) {
        MSOPDS_LOG(Warning)
            << "PDS inner loop: non-finite loss at step " << step;
      }
      ++non_finite_inner_events_;
    }
    const std::vector<Variable> grads = Grad(loss, theta);
    for (size_t i = 0; i < theta.size(); ++i) {
      theta[i] = Sub(theta[i],
                     ScalarMul(grads[i], config_.inner_learning_rate));
    }
  }
  return Forward(theta, social_weights, item_weights);
}

PdsSurrogate::FirstOrderResult PdsSurrogate::CheckpointedGrad(
    const std::vector<Variable>& xhats,
    const std::function<Variable(const Outcome&)>& readout) const {
  MSOPDS_CHECK_EQ(static_cast<int64_t>(xhats.size()), num_players());
  MSOPDS_CHECK(readout != nullptr);

  // The rematerialization contract (tensor/remat.h) forbids interior
  // nodes shared across steps, so the edge weights — derived from the
  // x-hat leaves — are rebuilt inside each callback rather than hoisted
  // the way TrainUnrolled() hoists them. That also makes the gradient
  // fold independent of the segmentation, so any checkpoint_every
  // produces the same bits.
  const auto step_fn = [&](const std::vector<Variable>& theta, int64_t) {
    const Variable social_weights = EdgeWeights(social_, xhats);
    const Variable item_weights = EdgeWeights(item_, xhats);
    const Variable loss =
        TrainLoss(theta, social_weights, item_weights, xhats);
    const std::vector<Variable> grads = Grad(loss, theta);
    std::vector<Variable> next;
    next.reserve(theta.size());
    for (size_t i = 0; i < theta.size(); ++i) {
      next.push_back(
          Sub(theta[i], ScalarMul(grads[i], config_.inner_learning_rate)));
    }
    return next;
  };
  const auto loss_fn = [&](const std::vector<Variable>& theta) {
    const Variable social_weights = EdgeWeights(social_, xhats);
    const Variable item_weights = EdgeWeights(item_, xhats);
    return readout(Forward(theta, social_weights, item_weights));
  };

  FirstOrderResult result;
  const auto build = [&]() -> Variable {
    std::vector<Tensor> initial_state;
    initial_state.reserve(theta_init_.size());
    for (const Tensor& init : theta_init_) {
      initial_state.push_back(init.Clone());
    }
    CheckpointedGradResult unrolled = CheckpointedUnrollGrad(
        initial_state, xhats, config_.inner_steps, config_.checkpoint_every,
        step_fn, loss_fn);
    result.loss = unrolled.loss.item();
    result.gradients = std::move(unrolled.input_grads);
    // Results leave through the capture; no root to harvest.
    return Variable();
  };
  // Every evaluation of the planner's loop builds this same tape (shapes
  // are fixed by the capacity sets; only x-hat values change), so the
  // first call compiles its allocation plan and later calls replay it.
  if (!config_.compile_first_order) {
    build();
  } else if (first_order_tape_ == nullptr) {
    first_order_tape_ = CompiledTape::Compile(build);
  } else {
    first_order_tape_->Replay(build);
    // Replayed gradients live in the tape's slab and would be overwritten
    // in place by the next evaluation; copy them out for the caller.
    for (Tensor& gradient : result.gradients) gradient = gradient.Clone();
  }
  if (!std::isfinite(result.loss)) {
    if (non_finite_inner_events_ == 0) {
      MSOPDS_LOG(Warning)
          << "PDS inner loop: non-finite checkpointed readout";
    }
    ++non_finite_inner_events_;
  }
  return result;
}

Variable PdsSurrogate::Predict(const Outcome& outcome,
                               const std::vector<int64_t>& users,
                               const std::vector<int64_t>& items) const {
  MSOPDS_CHECK_EQ(users.size(), items.size());
  return AddScalar(PairDot(GatherRows(outcome.user_final, MakeIndex(users)),
                           GatherRows(outcome.item_final, MakeIndex(items))),
                   config_.prediction_offset);
}

}  // namespace msopds
