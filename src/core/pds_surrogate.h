#ifndef MSOPDS_CORE_PDS_SURROGATE_H_
#define MSOPDS_CORE_PDS_SURROGATE_H_

#include <functional>
#include <memory>
#include <vector>

#include "attack/capacity.h"
#include "data/dataset.h"
#include "tensor/compile.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace msopds {

/// Hyperparameters of the Progressive Differentiable Surrogate.
struct PdsConfig {
  int64_t embedding_dim = 8;
  double init_stddev = 0.1;
  /// lambda of paper Eq. (1).
  double l2 = 1e-4;
  /// Inner (recorded) SGD step size.
  double inner_learning_rate = 0.5;
  /// L of Algorithm 1: recorded training steps per evaluation.
  int inner_steps = 5;
  /// Graph-convolution layers of Eq. (15) ("iteratively computes");
  /// candidate-edge selection weights regulate every layer.
  int num_layers = 1;
  /// Predictions are offset + <h_u^f, h_i^f>.
  double prediction_offset = 3.0;
  /// Gradient checkpointing for the recorded inner loop, used by the
  /// first-order CheckpointedGrad() path: keep only every k-th step's
  /// theta during forward and rematerialize segments during backward
  /// (tensor/remat.h). 0 disables (full tape). Second-order callers
  /// (TrainUnrolled + HVPs) are unaffected — they need the whole graph.
  int checkpoint_every = 0;
  /// Planning loops call CheckpointedGrad() many times with different
  /// x-hat *values* but one tape structure (shapes are fixed by the
  /// capacity sets). The first call compiles the tape's allocation plan
  /// (tensor/compile.h); later calls replay it, serving every unrolled
  /// inner-loop temporary from one planned slab. Bit-identical to the
  /// uncompiled path; a call with a structurally different readout
  /// gracefully falls back to the arena.
  bool compile_first_order = true;
};

/// Progressive Differentiable Surrogate (paper §IV-C).
///
/// Built once over the *fully poisoned* records R' and graph G'
/// (Algorithm 1 step 2): every candidate action of every player is
/// inserted up front and regulated at evaluation time by the binarized
/// importance vectors. Candidate poison edges enter the graph convolution
/// with per-edge selection weights 1_C = x-hat (Eq. (15)); candidate
/// poison ratings enter the training loss modulated by x-hat (Eq. (16)).
/// TrainUnrolled() records `inner_steps` SGD steps so first- and
/// second-order derivatives w.r.t. every x-hat can be backpropagated
/// through the training process (Algorithm 1 steps 6-10).
class PdsSurrogate {
 public:
  /// `capacities[p]` is player p's candidate set; pointers must outlive
  /// the surrogate. The parameter initialization is drawn once from `rng`
  /// and reused by every TrainUnrolled call (deterministic evaluations).
  PdsSurrogate(const Dataset& world,
               std::vector<const CapacitySet*> capacities,
               const PdsConfig& config, Rng* rng);

  int64_t num_players() const {
    return static_cast<int64_t>(capacities_.size());
  }
  const PdsConfig& config() const { return config_; }

  /// Final embeddings after the recorded inner training loop.
  struct Outcome {
    Variable user_final;  // [U, D]
    Variable item_final;  // [I, D]
  };

  /// Runs the recorded unrolled training given each player's binarized
  /// importance Variable (aligned with that player's capacity set).
  Outcome TrainUnrolled(const std::vector<Variable>& xhats) const;

  /// Differentiable predictions for aligned (users[k], items[k]) pairs.
  Variable Predict(const Outcome& outcome, const std::vector<int64_t>& users,
                   const std::vector<int64_t>& items) const;

  /// First-order planning gradient with bounded tape memory.
  struct FirstOrderResult {
    /// d(readout)/d(xhats[p]), parallel to xhats.
    std::vector<Tensor> gradients;
    /// Readout (attack loss) value.
    double loss = 0.0;
  };

  /// Runs the same unrolled training as TrainUnrolled(), applies
  /// `readout` (attack loss from the final embeddings) and returns its
  /// gradient w.r.t. every x-hat, segmenting the tape per
  /// config().checkpoint_every so peak memory is one segment instead of
  /// the whole inner loop. First-order only (no HVPs through this path);
  /// edge weights are rebuilt per step, as the rematerialization contract
  /// requires, so gradients are bit-identical across checkpoint settings
  /// (including off). Fault injection does not apply to this path; a
  /// non-finite readout still counts toward non_finite_inner_events().
  FirstOrderResult CheckpointedGrad(
      const std::vector<Variable>& xhats,
      const std::function<Variable(const Outcome&)>& readout) const;

  /// Numerical-health diagnostic: non-finite inner-loop losses observed
  /// across all TrainUnrolled calls (real failures and injected faults).
  int64_t non_finite_inner_events() const { return non_finite_inner_events_; }

 private:
  struct GraphBundle {
    IndexVec dst;
    IndexVec src;
    /// Per-player gather indices into the importance vector for the
    /// candidate-edge tail of (dst, src); base edges come first.
    std::vector<std::vector<int64_t>> player_gather;
    /// Constant per-edge 1/deg(dst) normalization (full poisoned graph).
    Tensor coefficients;
    int64_t num_base_edges = 0;
    int64_t num_nodes = 0;
  };

  /// Edge-weight vector: ones for base edges, gathered x-hat entries for
  /// candidates, all scaled by the degree normalization.
  Variable EdgeWeights(const GraphBundle& bundle,
                       const std::vector<Variable>& xhats) const;

  /// Training loss of Eq. (16) given current parameters.
  Variable TrainLoss(const std::vector<Variable>& theta,
                     const Variable& social_weights,
                     const Variable& item_weights,
                     const std::vector<Variable>& xhats) const;

  /// Graph convolution of Eq. (15) -> final embeddings.
  Outcome Forward(const std::vector<Variable>& theta,
                  const Variable& social_weights,
                  const Variable& item_weights) const;

  PdsConfig config_;
  std::vector<const CapacitySet*> capacities_;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;

  GraphBundle social_;
  GraphBundle item_;

  // Base (already public) ratings.
  IndexVec base_users_;
  IndexVec base_items_;
  Tensor base_targets_;

  // Candidate poison ratings, per player.
  std::vector<IndexVec> poison_users_;
  std::vector<IndexVec> poison_items_;
  std::vector<Tensor> poison_targets_;
  std::vector<std::vector<int64_t>> poison_gather_;

  // Fixed parameter initialization (theta_0).
  std::vector<Tensor> theta_init_;

  // Health diagnostic counter (TrainUnrolled is logically const).
  mutable int64_t non_finite_inner_events_ = 0;

  // Compile-once-replay-many plan for CheckpointedGrad (logically const:
  // caches an allocation layout, never values).
  mutable std::shared_ptr<CompiledTape> first_order_tape_;
};

}  // namespace msopds

#endif  // MSOPDS_CORE_PDS_SURROGATE_H_
