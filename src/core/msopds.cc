#include "core/msopds.h"

#include <memory>

#include "attack/baselines.h"
#include "core/losses.h"
#include "util/logging.h"

namespace msopds {
namespace {

// Target / competitor prediction index lists for a demographics block.
struct MarketIndices {
  std::vector<int64_t> target_users;
  std::vector<int64_t> target_items;
  std::vector<int64_t> compete_users;
  std::vector<int64_t> compete_items;
};

MarketIndices BuildMarketIndices(const Demographics& demo) {
  MarketIndices indices;
  for (int64_t user : demo.target_audience) {
    indices.target_users.push_back(user);
    indices.target_items.push_back(demo.target_item);
    for (int64_t item : demo.compete_items) {
      indices.compete_users.push_back(user);
      indices.compete_items.push_back(item);
    }
  }
  return indices;
}

}  // namespace

Msopds::Msopds(MsopdsConfig config, std::vector<OpponentSpec> opponents)
    : config_(std::move(config)), opponents_(std::move(opponents)) {}

PoisonPlan Msopds::Execute(Dataset* world, const Demographics& demo,
                           const AttackBudget& budget, Rng* rng) {
  MSOPDS_CHECK(world != nullptr);
  MSOPDS_CHECK(rng != nullptr);
  history_.clear();

  // Fake accounts + their unconditional 5-star target ratings are part of
  // the attack in both IA and MCA (paper §VI-A3) and enter the surrogate
  // as public data; the planned actions come on top.
  PoisonPlan plan;
  std::vector<int64_t> fakes;
  if (config_.inject_fake_accounts && budget.num_fake_users > 0) {
    auto injected = InjectFakeUsers(world, demo, budget);
    fakes = std::move(injected.first);
    plan = std::move(injected.second);
    plan.ApplyTo(world);
  }

  // Leader capacity (C_CA of Eq. (6)), optionally category-filtered.
  CapacitySet leader_capacity = CapacitySet::MakeComprehensive(
      *world, demo, fakes, budget.promote_rating);
  leader_capacity = leader_capacity.FilterTypes(
      config_.include_rating_actions, config_.include_social_actions,
      config_.include_item_actions);
  if (leader_capacity.size() == 0) {
    return plan;  // nothing to plan (degenerate ablation)
  }
  Budget leader_budget =
      leader_capacity.ClampBudget(budget.ToCapacityBudget());

  // Anticipated opponents: simplified CA (rating-only demotion, §VI-A4).
  std::vector<CapacitySet> opponent_capacities;
  std::vector<Budget> budgets = {leader_budget};
  opponent_capacities.reserve(opponents_.size());
  for (const OpponentSpec& spec : opponents_) {
    opponent_capacities.push_back(CapacitySet::MakeRatingOnly(
        *world, spec.demo, spec.preset_rating));
  }
  for (size_t q = 0; q < opponents_.size(); ++q) {
    const AttackBudget opp_budget =
        AttackBudget::FromLevel(opponents_[q].budget_level, *world);
    budgets.push_back(opponent_capacities[q].ClampBudget(
        Budget{opp_budget.hired_raters, 0, 0}));
  }

  std::vector<const CapacitySet*> capacities = {&leader_capacity};
  for (const CapacitySet& capacity : opponent_capacities) {
    capacities.push_back(&capacity);
  }

  // The surrogate over the fully-poisoned world (Algorithm 1 step 2).
  Rng surrogate_rng = rng->Split();
  PdsSurrogate surrogate(*world, capacities, config_.pds, &surrogate_rng);

  // Market prediction indices per player.
  std::vector<MarketIndices> markets;
  markets.push_back(BuildMarketIndices(demo));
  for (const OpponentSpec& spec : opponents_) {
    markets.push_back(BuildMarketIndices(spec.demo));
  }
  std::vector<int64_t> compete_counts;
  compete_counts.push_back(
      static_cast<int64_t>(demo.compete_items.size()));
  for (const OpponentSpec& spec : opponents_) {
    compete_counts.push_back(
        static_cast<int64_t>(spec.demo.compete_items.size()));
  }

  MsoOptimizer::LossFn losses = [&](const std::vector<Variable>& xhats) {
    const PdsSurrogate::Outcome outcome = surrogate.TrainUnrolled(xhats);
    std::vector<Variable> values;
    values.reserve(markets.size());
    for (size_t p = 0; p < markets.size(); ++p) {
      Variable target_preds = surrogate.Predict(
          outcome, markets[p].target_users, markets[p].target_items);
      Variable compete_preds = surrogate.Predict(
          outcome, markets[p].compete_users, markets[p].compete_items);
      // Leader promotes the target; opponents demote it.
      values.push_back(ComprehensiveLossFromPredictions(
          target_preds, compete_preds, compete_counts[p], /*demote=*/p > 0));
    }
    return values;
  };

  // Importance vectors and the Stackelberg optimization.
  Rng init_rng = rng->Split();
  ImportanceVector leader_iv(&leader_capacity, &init_rng);
  std::vector<std::unique_ptr<ImportanceVector>> opponent_ivs;
  std::vector<ImportanceVector*> players = {&leader_iv};
  for (const CapacitySet& capacity : opponent_capacities) {
    opponent_ivs.push_back(
        std::make_unique<ImportanceVector>(&capacity, &init_rng));
    players.push_back(opponent_ivs.back().get());
  }

  const MsoOptimizer optimizer(config_.mso);
  history_ = optimizer.Optimize(losses, players, budgets);

  // Outer-loop health summary (Algorithm 1 resilience): contained
  // numerical failures are fine — every iteration either applied a
  // finite update or kept the previous iterate — but they are worth a
  // trace in long sweeps.
  int unhealthy_iterations = 0;
  for (const MsoIterationStats& stats : history_) {
    if (!stats.healthy()) ++unhealthy_iterations;
  }
  if (unhealthy_iterations > 0) {
    MSOPDS_LOG(Warning) << name() << ": " << unhealthy_iterations << "/"
                        << history_.size()
                        << " MSO iterations hit numerical faults ("
                        << surrogate.non_finite_inner_events()
                        << " non-finite inner losses); updates were "
                           "skipped, not poisoned";
  }

  // Extract and inject the leader's plan.
  PoisonPlan planned = leader_iv.ExtractPlan(leader_budget);
  planned.ApplyTo(world);
  plan.actions.insert(plan.actions.end(), planned.actions.begin(),
                      planned.actions.end());
  return plan;
}

}  // namespace msopds
