#ifndef MSOPDS_CORE_MULTIPLAYER_GAME_H_
#define MSOPDS_CORE_MULTIPLAYER_GAME_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack.h"
#include "core/pds_surrogate.h"
#include "recsys/het_recsys.h"
#include "recsys/trainer.h"

namespace msopds {

/// Configuration of one multiplayer poisoning game (the paper's §VI-B
/// evaluation protocol).
struct GameConfig {
  HetRecSysConfig victim;
  TrainOptions victim_training;
  /// Number of subsequent opponents (N of Definition 5).
  int num_opponents = 1;
  /// Opponents' budget level b_op (paper default 2).
  int opponent_budget_level = 2;
  /// Opponents' BOPDS planning hyperparameters.
  PdsConfig opponent_pds;
  double opponent_step = 0.05;
  int opponent_iterations = 8;
};

/// Everything an attack factory may need to construct the attacker's
/// strategy: the base data, the sampled demographics (index 0 = attacker,
/// 1.. = opponents), and the budgets in play. MSOPDS uses the opponent
/// demographics as its anticipation input; IA baselines ignore them.
struct GameContext {
  const Dataset* base = nullptr;
  std::vector<Demographics> demos;
  GameConfig config;
  AttackBudget attacker_budget;
};

/// Builds the attacker's strategy for one game instance.
using AttackFactory =
    std::function<std::unique_ptr<Attack>(const GameContext&)>;

/// Outcome of one full game.
struct GameResult {
  std::string method;
  /// Paper metrics for the attacker's target item on the trained victim.
  double average_rating = 0.0;
  double hit_rate_at_3 = 0.0;
  /// Victim training diagnostics.
  double victim_final_loss = 0.0;
  /// What the attacker injected.
  PoisonPlan attacker_plan;
  /// Total ratings opponents injected.
  int64_t opponent_ratings = 0;

  // --- Resilience diagnostics ---
  /// False when the victim's training exhausted its numerical-health
  /// retry budget or the measured metrics came out non-finite; `failure`
  /// then says why. Metrics of an unhealthy game must not enter means.
  bool healthy = true;
  /// Victim-training epochs rolled back and retried.
  int victim_retries = 0;
  std::string failure;
};

/// Runs the paper's evaluation protocol: the attacker poisons first given
/// the clean data; each opponent then plans a (simplified, rating-only
/// demotion) Comprehensive Attack by BOPDS given everything injected so
/// far; finally the victim Het-RecSys is trained on the fully poisoned
/// records and the attacker's metrics are measured (§VI-B).
class MultiplayerGame {
 public:
  MultiplayerGame(const Dataset& base, GameConfig config);

  /// One game with the given attacker strategy, budget level b and seed.
  /// Deterministic given (factory behaviour, b, seed).
  GameResult Run(const AttackFactory& attacker_factory, int budget_level,
                 uint64_t seed) const;

  const Dataset& base() const { return base_; }
  const GameConfig& config() const { return config_; }

 private:
  Dataset base_;
  GameConfig config_;
};

}  // namespace msopds

#endif  // MSOPDS_CORE_MULTIPLAYER_GAME_H_
