// Quickstart: the MSOPDS pipeline end to end in ~80 lines.
//
//  1. Generate a heterogeneous dataset (ratings + social network + item
//     graph) with the Epinions-like synthetic profile.
//  2. Sample the market demographics (target audience, competing items,
//     the attacker's target item, customer bases).
//  3. Plan a Multiplayer Comprehensive Attack with MSOPDS, anticipating
//     one subsequent opponent.
//  4. Let the opponent react (BOPDS 1-star demotion), train the victim
//     Het-RecSys on the poisoned data, and report the paper's metrics.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/experiment.h"

using msopds::AttackFactory;
using msopds::Dataset;
using msopds::GameConfig;
using msopds::GameResult;
using msopds::MultiplayerGame;

int main() {
  // --- 1. Data. `scale` shrinks the published dataset sizes so this
  // demo finishes in seconds on one core; raise it for fidelity.
  const Dataset base = msopds::MakeExperimentDataset("epinions",
                                                     /*scale=*/0.1,
                                                     /*seed=*/42);
  std::printf("dataset: %s\n", base.Summary().c_str());

  // --- 2 + 3 + 4. The MultiplayerGame runs the paper's protocol:
  // attacker first, then each opponent reacts to everything injected so
  // far, then the ConsisRec-like victim is trained on the poisoned data.
  GameConfig config = msopds::DefaultGameConfig();
  config.num_opponents = 1;        // one rival seller reacts after us
  config.opponent_budget_level = 2;  // his budget b_op (paper default)
  MultiplayerGame game(base, config);

  const int budget = 5;  // attacker budget level b (paper: 2..5)
  std::printf("\n%-10s %8s %8s   (attacker budget b=%d, 1 opponent)\n",
              "method", "rbar", "HR@3", budget);
  for (const char* method : {"None", "Random", "RevAdv", "MSOPDS"}) {
    const AttackFactory factory = msopds::MakeAttackFactory(method);
    const GameResult result = game.Run(factory, budget, /*seed=*/7);
    std::printf("%-10s %8.4f %8.4f   attacker plan: %s\n", method,
                result.average_rating, result.hit_rate_at_3,
                result.attacker_plan.Summary().c_str());
  }

  std::printf(
      "\nReading the table: rbar is the victim's average predicted rating\n"
      "of the attacker's target item over the target audience; HR@3 is\n"
      "how often the target cracks the audience's top-3 against 49\n"
      "competitors. MSOPDS should clearly lead both: it planned against\n"
      "the opponent's demotion campaign instead of being blindsided.\n");
  return 0;
}
