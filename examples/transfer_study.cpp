// Transfer study: does a poisoning plan optimized against the PDS
// surrogate transfer to a victim with a *different* architecture?
//
// The paper evaluates on a ConsisRec-like victim; its surrogate (PDS) is
// a simplified mean-aggregation GNN. A natural robustness question for a
// defender is whether the attack is architecture-specific. Here the same
// injected worlds are evaluated on two victims:
//   - HetRecSys  (attention GNN, the paper's threat model), and
//   - LightGcn   (layer-averaged propagation, no attention, no projections)
// and we report the attacker's metrics on both.
//
// Build & run:  ./build/examples/transfer_study

#include <cstdio>

#include "core/bopds.h"
#include "core/experiment.h"
#include "recsys/lightgcn.h"
#include "recsys/metrics.h"
#include "recsys/trainer.h"

using msopds::AttackBudget;
using msopds::Dataset;
using msopds::Demographics;
using msopds::GameContext;
using msopds::Rng;

int main() {
  const Dataset base = msopds::MakeExperimentDataset("epinions", 0.1, 31);
  std::printf("world: %s\n\n", base.Summary().c_str());

  Rng demo_rng(3);
  const std::vector<Demographics> demos =
      msopds::SampleDemographics(base, 2, &demo_rng);

  GameContext context;
  context.base = &base;
  context.demos = demos;
  context.config = msopds::DefaultGameConfig();
  context.attacker_budget = AttackBudget::FromLevel(5, base);

  std::printf("%-10s | %28s | %28s\n", "", "HetRecSys (paper victim)",
              "LightGCN (transfer victim)");
  std::printf("%-10s | %13s %13s | %13s %13s\n", "method", "rbar", "HR@3",
              "rbar", "HR@3");

  for (const char* method : {"None", "Random", "RevAdv", "MSOPDS"}) {
    // Build the poisoned world once (attacker + reacting opponent).
    Dataset world = base;
    Rng rng(77);
    auto attack = msopds::MakeAttackFactory(method)(context);
    attack->Execute(&world, demos[0], context.attacker_budget, &rng);
    {
      msopds::BopdsConfig opponent_config;
      opponent_config.pds = context.config.opponent_pds;
      opponent_config.comprehensive = false;
      opponent_config.demote = true;
      opponent_config.preset_rating = msopds::kMinRating;
      opponent_config.iterations = context.config.opponent_iterations;
      msopds::Bopds opponent(opponent_config);
      AttackBudget opponent_budget = AttackBudget::FromLevel(
          context.config.opponent_budget_level, world);
      opponent_budget.promote_rating = msopds::kMinRating;
      Rng opponent_rng(78);
      opponent.Execute(&world, demos[1], opponent_budget, &opponent_rng);
    }

    // Victim A: the paper's attention Het-RecSys.
    Rng rng_a(5);
    msopds::HetRecSys victim_a(world, context.config.victim, &rng_a);
    msopds::TrainModel(&victim_a, world.ratings,
                       context.config.victim_training);
    // Victim B: LightGCN with social propagation.
    Rng rng_b(6);
    msopds::LightGcn victim_b(world, msopds::LightGcnConfig{}, &rng_b);
    msopds::TrainModel(&victim_b, world.ratings,
                       context.config.victim_training);

    const auto& market = demos[0];
    const double rbar_a = msopds::AverageTargetRating(
        &victim_a, market.target_audience, market.target_item);
    const double hr_a =
        msopds::HitRateAtK(&victim_a, market.target_audience,
                           market.target_item, market.compete_items, 3);
    const double rbar_b = msopds::AverageTargetRating(
        &victim_b, market.target_audience, market.target_item);
    const double hr_b =
        msopds::HitRateAtK(&victim_b, market.target_audience,
                           market.target_item, market.compete_items, 3);
    std::printf("%-10s | %13.4f %13.4f | %13.4f %13.4f\n", method, rbar_a,
                hr_a, rbar_b, hr_b);
  }

  std::printf(
      "\nIf the MSOPDS row dominates on both victims, the plan exploits\n"
      "the *data* (ratings + graph structure), not quirks of one\n"
      "architecture — the uncomfortable takeaway for defenders that the\n"
      "paper's Het-RecSys analysis implies.\n");
  return 0;
}
