// Serving demo: train → publish → poison → republish, live.
//
//  1. Generate a Ciao-like synthetic dataset and sample the market
//     demographics (target audience, the attacker's target item).
//  2. Train a matrix-factorization victim on the clean ratings, export
//     an immutable snapshot, and publish it to a ServingEngine.
//  3. Start client traffic against the engine (random audience members
//     asking for top-10 lists).
//  4. Run a Random injection attack on the dataset, retrain the victim
//     on the poisoned ratings, and hot-swap the new snapshot into the
//     engine *while the clients keep hitting it*.
//  5. Report the target item's mean full-catalog rank before vs after,
//     how often it appeared in the lists actually served under each
//     snapshot version, and the engine's latency stats.
//
// Build & run:  cmake --build build && ./build/examples/serve_demo

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "attack/baselines.h"
#include "core/experiment.h"
#include "data/demographics.h"
#include "recsys/matrix_factorization.h"
#include "recsys/trainer.h"
#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "serve/topk.h"
#include "util/rng.h"

namespace msopds {
namespace {

double MeanRatingValue(const std::vector<Rating>& ratings) {
  double total = 0.0;
  for (const Rating& r : ratings) total += r.value;
  return ratings.empty() ? 0.0 : total / static_cast<double>(ratings.size());
}

std::shared_ptr<const serve::ModelSnapshot> TrainAndSnapshot(
    const Dataset& dataset, uint64_t version, const char* source,
    uint64_t seed) {
  Rng rng(seed);
  MfConfig config;
  MatrixFactorization model(dataset.num_users, dataset.num_items, config,
                            MeanRatingValue(dataset.ratings), &rng);
  TrainOptions options;
  options.epochs = 40;
  const TrainResult result = TrainModel(&model, dataset.ratings, options);
  std::printf("  trained %s: %zu ratings, final loss %.4f\n", source,
              dataset.ratings.size(), result.final_loss);
  serve::SnapshotOptions snapshot_options;
  snapshot_options.version = version;
  snapshot_options.source = source;
  return serve::ModelSnapshot::FromModel(&model, dataset, snapshot_options);
}

/// Mean rank (1 = best) of `target` over the full catalog for the
/// audience, under the serving tie-break order (score desc, item asc).
double MeanTargetRank(const serve::ModelSnapshot& snapshot,
                      const std::vector<int64_t>& audience, int64_t target) {
  double total = 0.0;
  for (int64_t user : audience) {
    const double* row = snapshot.UserRow(user);
    const serve::ScoredItem target_entry{target,
                                         snapshot.ScoreRow(row, user, target)};
    int64_t rank = 1;
    for (int64_t item = 0; item < snapshot.num_items(); ++item) {
      if (item == target) continue;
      const serve::ScoredItem candidate{item,
                                        snapshot.ScoreRow(row, user, item)};
      if (serve::RanksBefore(candidate, target_entry)) ++rank;
    }
    total += static_cast<double>(rank);
  }
  return total / static_cast<double>(audience.size());
}

int Main() {
  // --- 1. Data + market.
  const uint64_t seed = 7;
  Dataset base = MakeExperimentDataset("ciao", /*scale=*/0.08, /*seed=*/42);
  std::printf("dataset: %s\n", base.Summary().c_str());
  Rng rng(seed);
  const std::vector<Demographics> players =
      SampleDemographics(base, /*num_players=*/1, &rng);
  const Demographics& market = players[0];
  const int64_t target = market.target_item;
  std::printf("target item %lld, audience of %zu users\n\n",
              static_cast<long long>(target), market.target_audience.size());

  // --- 2. Train on clean data, publish snapshot v1. The engine runs
  // with production-shaped overload protection: a bounded queue (clients
  // retry rejected requests with jittered backoff) and an enforced
  // per-request deadline.
  serve::EngineOptions engine_options;
  engine_options.max_queue = 256;
  engine_options.deadline_us = 100000;
  serve::ServingEngine engine(engine_options);
  auto clean = TrainAndSnapshot(base, /*version=*/1, "mf-clean", seed);
  engine.Publish(clean);

  // --- 3. Client traffic: random audience members ask for top-10 lists;
  // we tally how often the target item is actually served, per snapshot
  // version, to watch the swap take effect mid-traffic.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> served_by_version[3] = {{0}, {0}, {0}};
  std::atomic<int64_t> target_hits_by_version[3] = {{0}, {0}, {0}};
  std::atomic<int64_t> client_retries{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Rng client_rng(100 + static_cast<uint64_t>(c));
      serve::RetryingClient client(&engine, serve::RetryPolicy{},
                                   200 + static_cast<uint64_t>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        serve::ServeRequest request;
        request.user = market.target_audience[static_cast<size_t>(
            client_rng.UniformInt(static_cast<int64_t>(
                market.target_audience.size())))];
        const serve::ServeResponse response = client.Serve(request);
        // Only full-fidelity served lists count toward the attack tally —
        // rejected/shed/degraded responses don't reflect the model.
        if (!response.ok() || response.served_degraded) continue;
        if (response.snapshot_version > 2) continue;
        served_by_version[response.snapshot_version].fetch_add(1);
        for (int64_t item : response.items) {
          if (item == target) {
            target_hits_by_version[response.snapshot_version].fetch_add(1);
            break;
          }
        }
      }
      client_retries.fetch_add(client.retries());
    });
  }

  // --- 4. Poison, retrain, hot-swap v2 while the clients are running.
  Dataset poisoned = base;
  RandomAttack attack;
  const AttackBudget budget = AttackBudget::FromLevel(5, base);
  Rng attack_rng(seed + 1);
  const PoisonPlan plan =
      attack.Execute(&poisoned, market, budget, &attack_rng);
  std::printf("\npoisoned with %s: %s\n", attack.name().c_str(),
              plan.Summary().c_str());
  auto dirty = TrainAndSnapshot(poisoned, /*version=*/2, "mf-poisoned", seed);
  engine.Publish(dirty);

  // Let the clients observe the new snapshot for a moment, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  engine.Stop();

  // --- 5. Report.
  const double rank_before =
      MeanTargetRank(*clean, market.target_audience, target);
  const double rank_after =
      MeanTargetRank(*dirty, market.target_audience, target);
  std::printf("\ntarget item mean rank over %lld items: %.1f -> %.1f\n",
              static_cast<long long>(base.num_items), rank_before,
              rank_after);
  for (int version = 1; version <= 2; ++version) {
    const int64_t served = served_by_version[version].load();
    const int64_t hits = target_hits_by_version[version].load();
    std::printf(
        "snapshot v%d served %lld request(s); target in top-10 of %lld\n",
        version, static_cast<long long>(served),
        static_cast<long long>(hits));
  }
  const serve::EngineStats stats = engine.Stats();
  std::printf(
      "engine: %lld request(s), %lld batch(es), mean batch %.1f, "
      "p50 %lld us, p99 %lld us, %lld publish(es)\n",
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.batches), stats.mean_batch_size,
      static_cast<long long>(stats.p50_us),
      static_cast<long long>(stats.p99_us),
      static_cast<long long>(stats.publishes));
  std::printf(
      "overload: %lld rejected, %lld shed, %lld degraded, %lld cancelled, "
      "%lld retry(ies), %lld publish failure(s)\n",
      static_cast<long long>(stats.rejected),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.degraded),
      static_cast<long long>(stats.cancelled),
      static_cast<long long>(client_retries.load()),
      static_cast<long long>(stats.publish_failures));
  std::printf(
      "\nThe hot swap happened mid-traffic: responses under v1 and v2 were\n"
      "served from the same engine with no pause, and the poisoned model\n"
      "pushes the target item up the audience's rankings.\n");
  return 0;
}

}  // namespace
}  // namespace msopds

int main() { return msopds::Main(); }
