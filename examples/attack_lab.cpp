// attack_lab: a command-line harness for single experiments with
// machine-readable output — the "run one cell" companion to the bench
// binaries.
//
// Usage:
//   ./build/examples/attack_lab [--dataset=epinions] [--method=MSOPDS]
//       [--budget=5] [--opponents=1] [--opponent-budget=2]
//       [--scale=0.12] [--seed=7] [--json]
//
// With --json the result is printed as a single JSON object (see
// msopds::GameResultToJson), convenient for scripting sweeps.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.h"

namespace {

const char* ValueOf(const std::string& arg, const char* prefix) {
  const size_t n = std::string(prefix).size();
  if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset_name = "epinions";
  std::string method = "MSOPDS";
  int budget = 5;
  int opponents = 1;
  int opponent_budget = 2;
  double scale = 0.12;
  uint64_t seed = 7;
  bool as_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = ValueOf(arg, "--dataset=")) {
      dataset_name = v;
    } else if (const char* v = ValueOf(arg, "--method=")) {
      method = v;
    } else if (const char* v = ValueOf(arg, "--budget=")) {
      budget = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--opponents=")) {
      opponents = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--opponent-budget=")) {
      opponent_budget = std::atoi(v);
    } else if (const char* v = ValueOf(arg, "--scale=")) {
      scale = std::atof(v);
    } else if (const char* v = ValueOf(arg, "--seed=")) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--json") {
      as_json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const msopds::Dataset base =
      msopds::MakeExperimentDataset(dataset_name, scale, seed);
  msopds::GameConfig config = msopds::DefaultGameConfig();
  config.num_opponents = opponents;
  config.opponent_budget_level = opponent_budget;
  msopds::MultiplayerGame game(base, config);
  const msopds::GameResult result =
      game.Run(msopds::MakeAttackFactory(method), budget, seed + 1);

  if (as_json) {
    std::printf("%s\n", msopds::GameResultToJson(result).c_str());
  } else {
    std::printf("%s\n", base.Summary().c_str());
    std::printf(
        "method=%s b=%d opponents=%d b_op=%d seed=%llu\n"
        "rbar=%.4f HR@3=%.4f victim_loss=%.4f\n%s\n",
        result.method.c_str(), budget, opponents, opponent_budget,
        static_cast<unsigned long long>(seed), result.average_rating,
        result.hit_rate_at_3, result.victim_final_loss,
        result.attacker_plan.Summary().c_str());
  }
  return 0;
}
