// Dataset tour: the data substrate on its own.
//
// Generates the three synthetic profiles calibrated to the paper's
// datasets (Ciao / Epinions / LibraryThing), prints their structural
// statistics, demonstrates the core-user preprocessing filter, and round
// trips one dataset through the TSV loader (the path for plugging in the
// real public dumps).
//
// Build & run:  ./build/examples/dataset_tour [scale]

#include <cstdio>
#include <cstdlib>

#include "data/synthetic.h"
#include "data/tsv_loader.h"
#include "graph/graph_stats.h"

using msopds::ComputeGraphStats;
using msopds::Dataset;
using msopds::GraphStats;
using msopds::Rng;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;

  for (const auto& config :
       {msopds::CiaoProfile(scale), msopds::EpinionsProfile(scale),
        msopds::LibraryThingProfile(scale)}) {
    Rng rng(99);
    const Dataset d = msopds::GenerateSynthetic(config, &rng);
    std::printf("%s\n", d.Summary().c_str());
    std::printf("  social: %s\n",
                ComputeGraphStats(d.social).ToString().c_str());
    std::printf("  items:  %s\n",
                ComputeGraphStats(d.items).ToString().c_str());

    const Dataset core = msopds::FilterCoreUsers(d, /*min_friends=*/5,
                                                 /*min_ratings=*/1);
    std::printf("  core filter (>=5 friends, >=1 rating): %lld -> %lld "
                "users\n\n",
                static_cast<long long>(d.num_users),
                static_cast<long long>(core.num_users));
  }

  // TSV round trip: this is how the real Ciao/Epinions/LibraryThing dumps
  // are ingested ("user item rating" + "user user" files).
  Rng rng(123);
  const Dataset sample =
      msopds::GenerateSynthetic(msopds::CiaoProfile(0.03), &rng);
  const char* ratings_path = "/tmp/msopds_ratings.tsv";
  const char* trust_path = "/tmp/msopds_trust.tsv";
  if (msopds::SaveTsv(sample, ratings_path, trust_path).ok()) {
    auto loaded = msopds::LoadTsv(ratings_path, trust_path);
    if (loaded.ok()) {
      std::printf("TSV round trip: wrote %zu ratings, read back %zu (%s)\n",
                  sample.ratings.size(), loaded.value().ratings.size(),
                  loaded.value().Summary().c_str());
    }
  }
  std::printf(
      "\nTo run the suite on the real public dumps, convert them to the\n"
      "two-file TSV format above and load with msopds::LoadTsv, then\n"
      "apply msopds::FilterCoreUsers(d, 15, 1) as in the paper.\n");
  return 0;
}
