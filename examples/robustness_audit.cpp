// Robustness audit: the defender's view of this library.
//
// A RecSys operator wants to know: which poisoning strategy moves my
// recommendations the most, how much collateral damage does it cause to
// overall accuracy, and how visible is it in the data? This example runs
// every implemented attack against the same platform snapshot and prints
// an audit report: target uplift, HitRate@3, victim RMSE change on the
// clean ratings (quality collateral), and the injected footprint.
//
// Build & run:  ./build/examples/robustness_audit

#include <cstdio>

#include "attack/attack.h"
#include "core/experiment.h"
#include "recsys/metrics.h"
#include "recsys/trainer.h"

using msopds::AttackBudget;
using msopds::Dataset;
using msopds::Demographics;
using msopds::GameContext;
using msopds::HetRecSys;
using msopds::MultiplayerGame;
using msopds::Rng;

int main() {
  const Dataset base = msopds::MakeExperimentDataset("ciao", 0.1, 23);
  std::printf("auditing platform snapshot: %s\n\n", base.Summary().c_str());

  // Reference model trained on clean data.
  Rng clean_rng(1);
  HetRecSys clean_model(base, msopds::HetRecSysConfig{}, &clean_rng);
  msopds::TrainOptions training = msopds::DefaultGameConfig().victim_training;
  msopds::TrainModel(&clean_model, base.ratings, training);
  const double clean_rmse = msopds::Rmse(&clean_model, base.ratings);

  Rng demo_rng(2);
  const std::vector<Demographics> demos =
      msopds::SampleDemographics(base, 2, &demo_rng);
  const double clean_target = msopds::AverageTargetRating(
      &clean_model, demos[0].target_audience, demos[0].target_item);

  std::printf("clean model: rmse=%.4f, target item rbar=%.4f\n\n", clean_rmse,
              clean_target);
  std::printf("%-10s %8s %8s %10s %10s  %s\n", "attack", "rbar", "HR@3",
              "uplift", "rmse-drift", "injected footprint");

  GameContext context;
  context.base = &base;
  context.demos = demos;
  context.config = msopds::DefaultGameConfig();
  context.attacker_budget = AttackBudget::FromLevel(4, base);

  for (const char* method :
       {"Random", "Popular", "PGA", "S-attack", "RevAdv", "Trial", "BOPDS",
        "MSOPDS"}) {
    Dataset world = base;
    Rng rng(33);
    auto attack = msopds::MakeAttackFactory(method)(context);
    const msopds::PoisonPlan plan =
        attack->Execute(&world, demos[0], context.attacker_budget, &rng);

    Rng victim_rng(5);
    HetRecSys victim(world, msopds::HetRecSysConfig{}, &victim_rng);
    msopds::TrainModel(&victim, world.ratings, training);

    const double rbar = msopds::AverageTargetRating(
        &victim, demos[0].target_audience, demos[0].target_item);
    const double hr = msopds::HitRateAtK(&victim, demos[0].target_audience,
                                         demos[0].target_item,
                                         demos[0].compete_items, 3);
    // Collateral: RMSE of the poisoned model on the *clean* ratings.
    const double drift = msopds::Rmse(&victim, base.ratings) - clean_rmse;
    std::printf("%-10s %8.4f %8.4f %10.4f %10.4f  %s\n", method, rbar, hr,
                rbar - clean_target, drift, plan.Summary().c_str());
  }

  std::printf(
      "\nAudit reading guide: 'uplift' is how far the attacker moved his\n"
      "target; 'rmse-drift' is the recommendation-quality damage visible\n"
      "to the operator; the footprint shows what moderation would need to\n"
      "find. Graph-channel attacks (BOPDS/MSOPDS) achieve large uplift\n"
      "with far fewer fake ratings than injection attacks - exactly the\n"
      "monitoring blind spot the paper warns Het-RecSys operators about.\n");
  return 0;
}
