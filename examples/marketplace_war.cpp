// Marketplace war: how a promotion campaign survives as more and more
// rival sellers pile on demotion campaigns.
//
// Scenario (paper §VI-C, Fig. 6): our seller promotes the worst-rated
// item of a 50-item market segment to 5% of the user base. After our
// poison lands, N rival sellers each hire real users (planned with
// BOPDS) to 1-star the same item. We compare a naive injection attack
// against MSOPDS, which anticipates the rivals' moves.
//
// Build & run:  ./build/examples/marketplace_war [max_opponents]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"

using msopds::Dataset;
using msopds::GameConfig;
using msopds::GameResult;
using msopds::MultiplayerGame;

int main(int argc, char** argv) {
  const int max_opponents = argc > 1 ? std::atoi(argv[1]) : 3;
  const Dataset base =
      msopds::MakeExperimentDataset("epinions", 0.12, 11);
  std::printf("market: %s\n\n", base.Summary().c_str());

  std::printf("%-12s", "method");
  for (int n = 0; n <= max_opponents; ++n) std::printf("  N=%d rbar/HR ", n);
  std::printf("\n");

  for (const char* method : {"Popular", "Trial", "MSOPDS"}) {
    std::printf("%-12s", method);
    double first = 0.0, last = 0.0;
    for (int n = 0; n <= max_opponents; ++n) {
      GameConfig config = msopds::DefaultGameConfig();
      config.num_opponents = n;
      MultiplayerGame game(base, config);
      const GameResult result =
          game.Run(msopds::MakeAttackFactory(method), /*budget_level=*/5,
                   /*seed=*/19);
      std::printf("  %5.3f/%5.3f", result.average_rating,
                  result.hit_rate_at_3);
      if (n == 0) first = result.average_rating;
      last = result.average_rating;
    }
    std::printf("   (drop %.3f)\n", first - last);
  }

  std::printf(
      "\nThe drop column is the rbar lost between fighting nobody and\n"
      "fighting %d rivals. Every campaign decays as rivals pile on, but\n"
      "the Stackelberg planner keeps the highest absolute standing at\n"
      "every N: its poison was chosen to remain effective *after* the\n"
      "rivals' best responses (the push-pull analysis of Theorem 3).\n"
      "Single seeds are noisy; bench/fig6_num_opponents averages the\n"
      "sweep across datasets.\n",
      max_opponents);
  return 0;
}
